"""Network/compute cost model and virtual clock.

The scalability figures (9–12) report *response time under a cluster
configuration we cannot physically reproduce offline*.  Following the
substitution rule in DESIGN.md, the runtime counts the real work every
machine performs each superstep — edges scanned, vertices updated, messages
and bytes sent per destination — and a calibrated linear cost model converts
the counts into **virtual seconds**:

* compute:   ``seconds_per_edge * edges + seconds_per_vertex * vertices``,
  divided by a per-machine parallel efficiency factor (the paper's nodes have
  44 cores);
* network:   per destination, ``latency + bytes / bandwidth``; a machine's
  superstep communication cost is the sum over its destinations (its NIC is
  the bottleneck);
* barrier:   a fixed synchronisation cost per superstep per machine, which is
  what makes small graphs stop scaling past ~6 machines (Figure 10, OR-100M).

Synchronous supersteps cost ``max_machines(compute) + max_machines(comm) +
barrier``; the asynchronous model overlaps compute and communication
(``max(compute, comm)``) and pays no barrier, matching §3.3's discussion.

Default constants are calibrated to the paper's testbed: 2.6 GHz Xeons
(~10⁸ edge traversals/s/core sustained on random access), 10 GbE
(~1.25 GB/s, ~50 µs effective per message batch including serialisation).
Absolute times are *not* the claim — the shapes are; tests pin the shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepStats", "NetworkModel", "VirtualClock", "choose_direction"]


@dataclass
class StepStats:
    """Work counted on one machine during one superstep.

    ``push_partitions``/``pull_partitions`` count how many partition-steps
    executed in each traversal direction.  They are *observability* counters:
    the cost terms above are kept canonical (push-equivalent) in both modes,
    so the virtual clock is direction-independent by construction — the
    direction choice changes wall-clock only.
    """

    edges_scanned: int = 0
    vertices_updated: int = 0
    bytes_sent: dict[int, int] = field(default_factory=dict)
    messages_sent: dict[int, int] = field(default_factory=dict)
    disk_bytes_read: int = 0
    disk_reads: int = 0
    push_partitions: int = 0
    pull_partitions: int = 0

    def record_send(self, dest: int, nbytes: int, num_tasks: int) -> None:
        """Accumulate one outgoing batch toward ``dest``."""
        self.bytes_sent[dest] = self.bytes_sent.get(dest, 0) + int(nbytes)
        self.messages_sent[dest] = self.messages_sent.get(dest, 0) + int(num_tasks)

    def record_disk_read(self, nbytes: int) -> None:
        """Accumulate one block fetch from local disk (§3 I/O hierarchy)."""
        self.disk_bytes_read += int(nbytes)
        self.disk_reads += 1

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    @property
    def partition_steps(self) -> int:
        return self.push_partitions + self.pull_partitions

    def merge(self, other: "StepStats") -> None:
        """Fold another machine-step's counts into this one (for totals)."""
        self.edges_scanned += other.edges_scanned
        self.vertices_updated += other.vertices_updated
        self.disk_bytes_read += other.disk_bytes_read
        self.disk_reads += other.disk_reads
        self.push_partitions += other.push_partitions
        self.pull_partitions += other.pull_partitions
        for d, b in other.bytes_sent.items():
            self.bytes_sent[d] = self.bytes_sent.get(d, 0) + b
        for d, m in other.messages_sent.items():
            self.messages_sent[d] = self.messages_sent.get(d, 0) + m


@dataclass(frozen=True)
class NetworkModel:
    """Linear cost model mapping counted work to virtual seconds.

    Parameters mirror the paper's hardware; see the module docstring.
    ``cores_per_machine``/``parallel_efficiency`` shrink per-machine compute;
    ``async_overlap`` is the compute/communication overlap credit used by the
    asynchronous update model.
    """

    seconds_per_edge: float = 1.0e-8
    seconds_per_vertex: float = 2.0e-8
    # Per-direction edge coefficients for the push/pull decision (wall-clock
    # heuristic only; the virtual clock always charges ``seconds_per_edge``).
    # A pushed edge pays a random scatter into the next-frontier plane; a
    # pulled edge is a sequential gather + segmented OR, roughly 4x cheaper
    # per edge on the calibrated testbed — but pull must touch *every* local
    # edge, so it only wins once the frontier covers ~a quarter of the
    # partition's edge mass.
    seconds_per_edge_push: float = 1.0e-8
    seconds_per_edge_pull: float = 2.5e-9
    latency_seconds: float = 50e-6
    bandwidth_bytes_per_second: float = 1.25e9
    barrier_seconds: float = 150e-6
    disk_latency_seconds: float = 100e-6
    disk_bandwidth_bytes_per_second: float = 500e6
    cores_per_machine: int = 44
    parallel_efficiency: float = 0.25
    async_overlap: bool = False

    def compute_seconds(self, stats: StepStats) -> float:
        """One machine's compute time for a superstep."""
        raw = (
            self.seconds_per_edge * stats.edges_scanned
            + self.seconds_per_vertex * stats.vertices_updated
        )
        effective_cores = max(self.cores_per_machine * self.parallel_efficiency, 1.0)
        return raw / effective_cores

    def disk_seconds(self, stats: StepStats) -> float:
        """One machine's local-disk time for a superstep (out-of-core shards).

        The paper folds disk into the same I/O hierarchy as the network
        (§3 overview); each block fetch pays a seek-ish latency plus
        bytes over the disk bandwidth.
        """
        if stats.disk_reads == 0:
            return 0.0
        return (
            stats.disk_reads * self.disk_latency_seconds
            + stats.disk_bytes_read / self.disk_bandwidth_bytes_per_second
        )

    def comm_seconds(self, stats: StepStats) -> float:
        """One machine's outbound communication time for a superstep."""
        total = 0.0
        for dest, nbytes in stats.bytes_sent.items():
            total += self.latency_seconds + nbytes / self.bandwidth_bytes_per_second
        return total

    def superstep_seconds(self, per_machine: list[StepStats]) -> float:
        """Cluster-wide elapsed virtual time for one superstep.

        Synchronous: slowest compute + slowest communication + barrier.
        Asynchronous: slowest ``max(compute, comm)`` and no barrier.
        """
        if not per_machine:
            return 0.0
        compute = [
            self.compute_seconds(s) + self.disk_seconds(s) for s in per_machine
        ]
        comm = [self.comm_seconds(s) for s in per_machine]
        if self.async_overlap:
            return max(max(c, x) for c, x in zip(compute, comm))
        barrier = self.barrier_seconds if len(per_machine) > 1 else 0.0
        return max(compute) + max(comm) + barrier

    def with_async(self, enabled: bool = True) -> "NetworkModel":
        """A copy of this model with the asynchronous overlap toggled."""
        from dataclasses import replace

        return replace(self, async_overlap=enabled)

    def choose_direction(self, frontier_edges: int, local_edges: int) -> str:
        """Pick ``"push"`` or ``"pull"`` for one partition-superstep."""
        return choose_direction(
            frontier_edges,
            local_edges,
            self.seconds_per_edge_push,
            self.seconds_per_edge_pull,
        )


def choose_direction(
    frontier_edges: int,
    local_edges: int,
    push_coeff: float = 1.0e-8,
    pull_coeff: float = 2.5e-9,
) -> str:
    """Direction-optimizing heuristic for one partition-superstep.

    ``frontier_edges`` is the out-edge mass of the active frontier (what
    push would scan); ``local_edges`` is the partition's local in-edge count
    (what pull must always scan).  Pull wins when scanning everything with
    the cheap sequential kernel beats scattering the frontier's edges:
    ``pull_coeff * local_edges < push_coeff * frontier_edges``.

    The decision is a pure function of its arguments, so both backends —
    and a checkpoint/rewind replay — reproduce identical choices.
    """
    if frontier_edges <= 0:
        return "push"
    return (
        "pull"
        if pull_coeff * local_edges < push_coeff * frontier_edges
        else "push"
    )


class VirtualClock:
    """Accumulates virtual seconds superstep by superstep."""

    def __init__(self) -> None:
        self.now = 0.0
        self.per_step: list[float] = []

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError("time cannot flow backwards")
        self.now += seconds
        self.per_step.append(seconds)
        return self.now

    @property
    def num_steps(self) -> int:
        return len(self.per_step)
