"""Fault model: deterministic injection schedules, retry/checkpoint policy.

The paper's testbed is a 9-node cluster where machines crash, straggle and
drop traffic; this module is the *model* of those failures plus the knobs
that govern surviving them.  Everything is deterministic and seedable so
every recovery path is unit-testable and CI-reproducible:

* :class:`FaultPlan` — a seeded schedule of fault events
  (``crash_worker``, ``delay_worker``, ``drop_outbox``, ``corrupt_inbox``),
  threaded into pool workers at spawn and into the in-process engine via
  the :class:`~repro.runtime.cluster.SimCluster`;
* :class:`FaultInjector` — the per-worker view of a plan.  Events fire
  **once**: a replayed superstep (after checkpoint recovery) does not
  re-crash, which is exactly how a real transient fault behaves.  Events
  marked ``sticky`` re-fire every attempt — the tool for forcing a retry
  budget to exhaust so the degradation ladder can be tested;
* :class:`RetryPolicy` — how many fresh-pool attempts a batch gets, the
  exponential backoff between them, the wall-clock deadline across them,
  and whether exhaustion degrades to the in-process engine or raises;
* :class:`FaultTolerance` — the supervisor's operating parameters: how
  often to checkpoint, how long a worker may take one superstep phase
  before it is declared hung, and how many recoveries one run may spend.

Message integrity is checked end-to-end with :func:`batch_checksum`: the
sender checksums the exact bytes it wrote into shared memory, the receiver
re-checksums the bytes it is about to apply, and any difference raises
:class:`~repro.errors.CorruptMessage` — which the coordinator treats as one
more recoverable fault.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "CRASH",
    "DELAY",
    "DROP_OUTBOX",
    "CORRUPT_INBOX",
    "CRASH_POST_APPEND",
    "CRASH_MID_CHECKPOINT",
    "CRASH_MID_COMPACTION",
    "FAULT_KINDS",
    "DURABLE_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "FaultTolerance",
    "batch_checksum",
]

CRASH = "crash"
DELAY = "delay"
DROP_OUTBOX = "drop_outbox"
CORRUPT_INBOX = "corrupt_inbox"

#: Every injectable fault kind, in schedule-drawing order.
FAULT_KINDS = (CRASH, DELAY, DROP_OUTBOX, CORRUPT_INBOX)

# Process-level crash points of the durability layer (PR: durable service
# state).  Unlike the worker faults above — which a supervisor recovers
# *within* one process's lifetime — these kill the whole coordinator with
# ``os._exit(CRASH_EXIT_CODE)`` and are survived by ``GraphSession.restore``
# from the WAL + checkpoint directory.  ``step`` carries the 1-based
# ordinal of the operation (the Nth WAL append / checkpoint / compaction)
# and ``machine`` is 0 (there is only one coordinator).
CRASH_POST_APPEND = "crash_post_append"  # WAL record durable, ack never sent
CRASH_MID_CHECKPOINT = "crash_mid_checkpoint"  # data written, manifest not
CRASH_MID_COMPACTION = "crash_mid_compaction"  # record logged, fold not done

#: The durability layer's whole-process kill points, in drawing order.
DURABLE_FAULT_KINDS = (
    CRASH_POST_APPEND,
    CRASH_MID_CHECKPOINT,
    CRASH_MID_COMPACTION,
)

#: The process exit code an injected crash dies with (distinguishable from
#: a genuine interpreter abort in the supervisor's logs).
CRASH_EXIT_CODE = 87


def batch_checksum(*arrays: np.ndarray) -> int:
    """CRC-32 over the raw bytes of ``arrays``, in order.

    Cheap (zlib's C loop), stable across processes and platforms for the
    little-endian dtypes the runtime ships, and strong enough to catch the
    bit flips / truncations the corruption faults model.
    """
    crc = 0
    for arr in arrays:
        crc = zlib.crc32(np.ascontiguousarray(arr).view(np.uint8), crc)
    return crc


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *what* happens to *which* machine at *which*
    superstep.

    ``seconds`` only matters for :data:`DELAY` events.  ``sticky`` events
    survive recovery/retry (they re-fire on every attempt); normal events
    are one-shot.  ``event_id`` is unique within a plan so the coordinator
    can mark the events a dead worker must have consumed.
    """

    kind: str
    step: int
    machine: int
    seconds: float = 0.0
    sticky: bool = False
    event_id: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS + DURABLE_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 0:
            raise ValueError("fault step must be >= 0")
        if self.machine < 0:
            raise ValueError("fault machine must be >= 0")
        if self.seconds < 0:
            raise ValueError("delay seconds must be >= 0")


class FaultPlan:
    """A deterministic schedule of fault events against one pool/cluster.

    Build explicitly (the chainable ``crash_worker``/``delay_worker``/
    ``drop_outbox``/``corrupt_inbox`` methods) or draw a seeded random
    schedule with :meth:`FaultPlan.random`.  Plans are value objects: the
    pool copies the event list at spawn and tracks consumption itself.
    """

    def __init__(self, events: list[FaultEvent] | None = None):
        self.events: list[FaultEvent] = list(events or [])

    # -- builders ----------------------------------------------------------- #

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(replace(event, event_id=len(self.events)))
        return self

    def crash_worker(
        self, step: int, machine: int, sticky: bool = False
    ) -> "FaultPlan":
        """Kill ``machine``'s worker process at the start of ``step``."""
        return self._add(FaultEvent(CRASH, step, machine, sticky=sticky))

    def delay_worker(
        self, step: int, machine: int, seconds: float
    ) -> "FaultPlan":
        """Stall ``machine`` for ``seconds`` of wall time during ``step``.

        Below the supervisor's ``step_timeout`` this is a straggler (no
        recovery, just latency); at or above it the worker is declared hung,
        killed, and recovered exactly like a crash.
        """
        return self._add(FaultEvent(DELAY, step, machine, seconds=seconds))

    def drop_outbox(self, step: int, machine: int) -> "FaultPlan":
        """Discard ``machine``'s outbound batches for ``step`` after its
        send accounting ran — detected by the coordinator's refs-vs-stats
        invariant."""
        return self._add(FaultEvent(DROP_OUTBOX, step, machine))

    def corrupt_inbox(self, step: int, machine: int) -> "FaultPlan":
        """Flip one byte of the first inbound batch ``machine`` reads at
        ``step`` — detected by the per-batch message checksum."""
        return self._add(FaultEvent(CORRUPT_INBOX, step, machine))

    def crash_post_append(self, at: int) -> "FaultPlan":
        """Kill the whole process right after its ``at``-th WAL append is
        durable (fsynced) but before the mutation is acknowledged."""
        return self._add(FaultEvent(CRASH_POST_APPEND, at, 0))

    def crash_mid_checkpoint(self, at: int) -> "FaultPlan":
        """Kill the whole process in the middle of its ``at``-th periodic
        checkpoint: payload files written, manifest not yet published —
        the torn checkpoint must be invisible to recovery."""
        return self._add(FaultEvent(CRASH_MID_CHECKPOINT, at, 0))

    def crash_mid_compaction(self, at: int) -> "FaultPlan":
        """Kill the whole process mid-compaction: the compaction's WAL
        record is durable but the in-memory delta fold never ran —
        recovery must replay the compaction to the exact epoch."""
        return self._add(FaultEvent(CRASH_MID_COMPACTION, at, 0))

    @classmethod
    def random(
        cls,
        seed: int,
        num_workers: int,
        max_step: int = 3,
        num_events: int = 1,
        kinds: tuple[str, ...] = FAULT_KINDS,
        delay_seconds: float = 0.05,
    ) -> "FaultPlan":
        """A seeded random schedule: ``num_events`` faults drawn uniformly
        over ``kinds`` × workers × steps ``[0, max_step]``.

        Same seed, same plan — the chaos suite runs fixed seeds in CI.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        rng = np.random.default_rng(seed)
        plan = cls()
        for _ in range(num_events):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            step = int(rng.integers(0, max_step + 1))
            machine = int(rng.integers(0, num_workers))
            if kind == DELAY:
                plan.delay_worker(step, machine, delay_seconds)
            else:
                plan._add(FaultEvent(kind, step, machine))
        return plan

    @classmethod
    def random_durable(
        cls,
        seed: int,
        max_append: int = 4,
        max_checkpoint: int = 2,
        max_compaction: int = 1,
        kinds: tuple[str, ...] = DURABLE_FAULT_KINDS,
    ) -> "FaultPlan":
        """One seeded whole-process crash point for the durable drill.

        Draws a kind uniformly from ``kinds`` and a 1-based ordinal within
        that kind's budget (how many appends / periodic checkpoints /
        compactions the drill's workload is known to perform).  Same seed,
        same kill point — the durable chaos suite runs fixed seeds in CI.
        """
        rng = np.random.default_rng(seed)
        kind = kinds[int(rng.integers(0, len(kinds)))]
        budget = {
            CRASH_POST_APPEND: max_append,
            CRASH_MID_CHECKPOINT: max_checkpoint,
            CRASH_MID_COMPACTION: max_compaction,
        }[kind]
        at = int(rng.integers(1, max(budget, 1) + 1))
        return cls()._add(FaultEvent(kind, at, 0))

    # -- views -------------------------------------------------------------- #

    def events_for(self, machine: int) -> list[FaultEvent]:
        """The slice of the schedule one worker enforces on itself."""
        return [e for e in self.events if e.machine == machine]

    @property
    def num_events(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{e.kind}(step={e.step}, m={e.machine})" for e in self.events
        )
        return f"FaultPlan([{inner}])"


class FaultInjector:
    """One participant's live view of its fault events.

    ``take(kind, step)`` returns the first un-fired event matching
    ``(kind, step)`` and marks it fired; sticky events are never marked.
    Both the pool worker loop and the in-process resilient engine drive
    their injections through this, so one-shot semantics (a replayed
    superstep does not re-fault) live in exactly one place.
    """

    def __init__(self, events: list[FaultEvent] | None = None):
        self.events = list(events or [])
        self._fired: set[int] = set()

    def take(
        self, kind: str, step: int, machine: int | None = None
    ) -> FaultEvent | None:
        """First un-fired event matching ``(kind, step)`` — and ``machine``
        when given.  Pool workers hold a pre-filtered slice and omit
        ``machine``; the in-process engine holds the whole plan and passes
        it."""
        for event in self.events:
            if (
                event.kind == kind
                and event.step == step
                and (machine is None or event.machine == machine)
                and event.event_id not in self._fired
            ):
                if not event.sticky:
                    self._fired.add(event.event_id)
                return event
        return None

    def reset(self, events: list[FaultEvent] | None = None) -> None:
        """Adopt a new schedule (and forget what fired)."""
        self.events = list(events or [])
        self._fired = set()


@dataclass(frozen=True)
class RetryPolicy:
    """How a session treats a batch whose pool attempt was lost.

    ``max_attempts`` counts *total* attempts (1 = fail fast).  Attempt
    ``i``'s backoff sleep is ``base_delay * 2**(i-1)`` wall seconds.
    ``deadline`` (wall seconds, measured across all attempts of one batch)
    stops retrying early; ``degrade=True`` converts exhaustion into a
    transparent fall-back onto the in-process engine, ``False`` raises
    (:class:`~repro.errors.WorkerLost`, or
    :class:`~repro.errors.DeadlineExceeded` when the deadline cut it short).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    deadline: float | None = None
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def backoff(self, attempt: int) -> float:
        """Sleep before attempt ``attempt + 1`` (exponential, base 2)."""
        return float(self.base_delay * (2 ** max(attempt - 1, 0)))


@dataclass(frozen=True)
class FaultTolerance:
    """The supervisor's operating parameters for one pool.

    ``checkpoint_interval`` — snapshot resident task state every C
    supersteps (1 = every barrier, the right default for the small graphs
    of this reproduction; large graphs raise C to amortise the copy).
    ``step_timeout`` — wall seconds a worker may take to answer one
    protocol message before it is declared hung (None = wait forever).
    ``max_recoveries`` — recoveries one ``run()`` may spend before the
    batch is abandoned with :class:`~repro.errors.WorkerLost`.
    """

    checkpoint_interval: int = 1
    step_timeout: float | None = None
    max_recoveries: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.step_timeout is not None and self.step_timeout <= 0:
            raise ValueError("step_timeout must be positive")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
