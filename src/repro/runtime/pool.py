"""The persistent shared-memory worker pool: real multicore supersteps.

The simulated cluster executes every machine serially in one process and
*charges* a cost model; this module is the execution backend that actually
uses the cores.  One long-lived OS process per simulated machine attaches
the shared graph image once (:mod:`repro.runtime.shm`), keeps its
:class:`~repro.runtime.engine.PartitionTask` state resident across batches,
and runs the identical superstep protocol:

1. the coordinator broadcasts ``compute``; every worker expands its local
   frontier, combines its outbox per destination (exactly as
   :func:`~repro.runtime.comm.exchange_sync` would), writes the combined
   batches into its own shared-memory outbox segment, and replies with
   small :class:`~repro.runtime.shm.BatchRef` control records;
2. the coordinator routes the refs by destination and broadcasts ``apply``;
   every worker reads its inbound batches as zero-copy views (sender-
   ascending order — the same reduction order as the in-process inbox),
   applies, finalizes, and votes;
3. the coordinator advances the same :class:`~repro.runtime.netmodel.
   VirtualClock` from the per-worker :class:`StepStats`, so virtual times
   are bit-identical to the in-process engine.

Only control records, stats and probe results cross the pipes; payload
arrays never leave shared memory.  The pool survives across batches
(``ensure_task`` re-arms resident task state), composing PR 1's
session-reuse win with real parallelism.

Determinism: the start method is always ``spawn`` (no inherited state),
each worker owns a :func:`numpy.random.default_rng` seeded from the pool
seed and its worker id, and shutdown is explicit
(:meth:`WorkerPool.shutdown`, wired to ``GraphSession.close()`` and
``atexit``) with a terminate fallback so pytest never leaks processes.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import secrets
import time
import traceback

import numpy as np

from repro.graph.partition import PartitionedGraph, owner_of_bounds
from repro.runtime.cluster import Machine
from repro.runtime.engine import EngineResult, emit_superstep
from repro.runtime.message import MessageBatch, TaskBuffer, combine_or
from repro.runtime.netmodel import NetworkModel, StepStats, VirtualClock
from repro.runtime.shm import (
    OutboxReader,
    OutboxWriter,
    attach_graph,
    build_graph_image,
    create_segment,
)

__all__ = ["WorkerPool", "PoolError"]

#: Upper bound on per-entry vertex-id bytes in a combined batch (int64).
_VERTEX_BYTES = 8


class PoolError(RuntimeError):
    """A worker raised; the embedded traceback is the worker's."""


class _WorkerCluster:
    """The slice of :class:`SimCluster` a task can see inside a worker.

    Tasks only ever call ``cluster.owner_of`` — routing needs the bounds
    array (a shared view), nothing else.  ``rng`` is the worker's seeded
    generator, there for any task that needs deterministic randomness.
    """

    def __init__(self, bounds: np.ndarray, rng: np.random.Generator):
        self.bounds = bounds
        self.rng = rng

    def owner_of(self, vertices) -> np.ndarray | int:
        return owner_of_bounds(self.bounds, vertices)


def _worker_main(conn, manifest, worker_id: int, rng_seed: int) -> None:
    """One pool worker: attach the image once, then serve ops until close.

    Every callable received over the pipe (task builders, resetters,
    probes) must be a picklable module-level function — see
    :mod:`repro.core.adapters`.
    """
    image = attach_graph(manifest)
    machine = Machine(worker_id, image.partitions[worker_id])
    cluster = _WorkerCluster(image.bounds, np.random.default_rng(rng_seed))
    writer = OutboxWriter(worker_id)
    reader = OutboxReader()
    tasks: dict = {}
    current = None
    combiner = combine_or
    probe = None
    probe_args: tuple = ()
    step_stats: StepStats | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # pragma: no cover - parent died
                break
            op = msg[0]
            try:
                if op == "compute":
                    stats = StepStats()
                    t0 = time.perf_counter()
                    current.compute(stats)
                    writer.begin()
                    refs = []
                    outbox = machine.outbox
                    for dest in outbox.partitions():
                        merged = outbox.merged(dest, combiner=combiner)
                        if merged is None or merged.num_tasks == 0:
                            continue
                        if dest == worker_id:
                            raise AssertionError(
                                "local tasks must not go through the outbox"
                            )
                        stats.record_send(dest, merged.nbytes(), merged.num_tasks)
                        refs.append(
                            writer.write(dest, merged.vertices, merged.payload)
                        )
                    machine.outbox = TaskBuffer()
                    step_stats = stats
                    conn.send(("out", refs, time.perf_counter() - t0))
                elif op == "apply":
                    t0 = time.perf_counter()
                    stats = step_stats if step_stats is not None else StepStats()
                    step_stats = None
                    for sender, ref in msg[1]:
                        vertices, payload = reader.view(ref)
                        machine.inbox.append(
                            sender, MessageBatch(vertices, payload)
                        )
                    current.apply_inbox(stats)
                    vote = current.finalize()
                    result = probe(current, *probe_args) if probe else None
                    conn.send(
                        ("step", vote, stats, result, time.perf_counter() - t0)
                    )
                elif op == "install":
                    _, key, build, kwargs = msg
                    machine.reset_buffers()
                    current = build(machine, cluster, **kwargs)
                    tasks[key] = current
                    conn.send(("ok", None))
                elif op == "reset":
                    _, key, reset, kwargs = msg
                    current = tasks[key]
                    reset(current, **kwargs)
                    conn.send(("ok", None))
                elif op == "seed":
                    for local_vertex, query in msg[1]:
                        current.seed(local_vertex, query)
                    conn.send(("ok", None))
                elif op == "arm":
                    _, combiner, probe, args = msg
                    probe_args = tuple(args) if args else ()
                    conn.send(("ok", None))
                elif op == "call":
                    _, fn, args, kwargs = msg
                    conn.send(("ok", fn(current, *args, **(kwargs or {}))))
                elif op == "outbox":
                    writer.attach(msg[1])
                    conn.send(("ok", None))
                elif op == "prepare":
                    machine.reset_buffers()
                    step_stats = None
                    conn.send(("ok", None))
                elif op == "close":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol misuse guard
                    raise RuntimeError(f"unknown op {op!r}")
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        tasks.clear()
        current = None
        machine = None
        reader.close()
        writer.close()
        image.close()
        conn.close()


class WorkerPool:
    """A persistent pool of one process per partition of one graph.

    Created lazily by ``GraphSession(backend="pool")`` and reused for every
    batch until :meth:`shutdown`.  The parent owns every shared-memory
    segment (graph image + per-worker outboxes) and unlinks them all on
    shutdown; workers only ever attach.
    """

    def __init__(
        self,
        pg: PartitionedGraph,
        netmodel: NetworkModel | None = None,
        instrumentation=None,
        start_method: str = "spawn",
        seed: int = 0,
    ):
        from repro.telemetry.instrument import NULL_INSTRUMENTATION

        self.pg = pg
        self.netmodel = netmodel or NetworkModel()
        self.instr = instrumentation or NULL_INSTRUMENTATION
        self.num_workers = pg.num_partitions
        self.rng_seed = seed
        self._token = secrets.token_hex(4)
        self._image, manifest = build_graph_image(pg, f"cgp{self._token}")
        self._outboxes: list = [None] * self.num_workers
        self._outbox_width = 0
        self._outbox_gen = 0
        self._installed: set = set()
        self._closed = False
        ctx = mp.get_context(start_method)
        self._conns = []
        self._procs = []
        try:
            for i in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, manifest, i, seed * 7919 + i),
                    name=f"repro-pool-{self._token}-{i}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.shutdown()
            raise
        atexit.register(self.shutdown)

    # -- lifecycle --------------------------------------------------------- #

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of every live segment this pool owns (leak checks)."""
        segments = [self._image] + [s for s in self._outboxes if s is not None]
        return [s.name for s in segments]

    def shutdown(self) -> None:
        """Stop every worker and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.shutdown)
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(5):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
                proc.join(timeout=5)
        for shm in [self._image] + [s for s in self._outboxes if s is not None]:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._outboxes = [None] * self.num_workers
        self._conns = []
        self._procs = []

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("worker pool is shut down")

    # -- pipe plumbing ------------------------------------------------------ #

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except (EOFError, ConnectionResetError) as exc:
            raise PoolError(
                "pool worker died before replying. If this happened right "
                "after pool startup, the spawned child may have failed to "
                "re-import __main__: pool-using code must live in a real "
                "module file with an `if __name__ == '__main__':` guard "
                "(not a stdin/-c script)."
            ) from exc
        if reply[0] == "err":
            raise PoolError(f"pool worker failed:\n{reply[1]}")
        return reply[1:]

    def _broadcast(self, message) -> list:
        for conn in self._conns:
            conn.send(message)
        return [self._recv(conn)[0] for conn in self._conns]

    def _send_each(self, messages) -> list:
        for conn, message in zip(self._conns, messages):
            conn.send(message)
        return [self._recv(conn)[0] for conn in self._conns]

    # -- batch protocol ------------------------------------------------------ #

    def ensure_task(
        self,
        key: tuple,
        build,
        build_kwargs: dict,
        reset,
        reset_kwargs: dict,
        payload_width: int,
    ) -> None:
        """Install a task on every worker, or reset the resident one.

        Mirrors ``GraphSession.tasks_for``: the first batch under ``key``
        builds task state inside each worker; later batches re-arm it in
        place.  ``payload_width`` (bytes per combined-batch entry) sizes the
        outbox segments.
        """
        self._check_open()
        self._ensure_outboxes(payload_width)
        if key in self._installed:
            self._broadcast(("reset", key, reset, reset_kwargs))
        else:
            self._broadcast(("install", key, build, build_kwargs))
            self._installed.add(key)

    def _ensure_outboxes(self, payload_width: int) -> None:
        """Grow per-worker outbox segments to fit ``payload_width`` entries.

        A combined per-destination batch holds distinct vertices only, so a
        worker's whole outbox never exceeds ``min(out_edges, n)`` entries —
        a static bound that makes mid-superstep growth impossible.
        """
        if payload_width <= self._outbox_width and self._outboxes[0] is not None:
            return
        self._outbox_width = max(payload_width, self._outbox_width)
        self._outbox_gen += 1
        old = list(self._outboxes)
        messages = []
        for i, part in enumerate(self.pg.partitions):
            entries = min(part.num_out_edges, self.pg.num_vertices)
            capacity = (
                entries * (_VERTEX_BYTES + self._outbox_width)
                + 64 * self.num_workers
                + 1024
            )
            shm = create_segment(
                f"cgp{self._token}o{i}g{self._outbox_gen}", capacity
            )
            self._outboxes[i] = shm
            messages.append(("outbox", shm.name))
        self._send_each(messages)
        for shm in old:
            if shm is not None:
                shm.close()
                shm.unlink()

    def prepare(self) -> None:
        """Drop queued worker-side buffers before a batch."""
        self._check_open()
        self._broadcast(("prepare",))

    def seed(self, per_worker_seeds) -> None:
        """Deliver each worker its ``(local_vertex, query)`` seed list."""
        self._check_open()
        self._send_each([("seed", seeds) for seeds in per_worker_seeds])

    def arm(self, combiner=combine_or, probe=None, probe_args=None) -> None:
        """Set the run's combiner and optional per-step probe.

        ``probe(task, *args)`` runs worker-side after every finalize; its
        results arrive in machine order as the fourth ``on_step`` argument.
        ``probe_args`` is one tuple per worker (or None).
        """
        self._check_open()
        if probe_args is None:
            probe_args = [()] * self.num_workers
        self._send_each(
            [("arm", combiner, probe, args) for args in probe_args]
        )

    def gather(self, fn, *args, **kwargs) -> list:
        """Run ``fn(task, *args)`` on every worker; results in machine order."""
        self._check_open()
        return self._broadcast(("call", fn, args, kwargs))

    def run(self, max_supersteps: int | None = None, on_step=None) -> EngineResult:
        """Drive seeded worker tasks to quiescence (the parallel engine loop).

        Semantics mirror :meth:`SuperstepEngine.run` exactly — same step
        cap, same vote handling, same virtual clock — with one extension:
        ``on_step(step_index, per_machine_stats, virtual_now, probe_results)``
        may return a ``(fn, args)`` control to broadcast to every worker
        before the next superstep (reachability's early termination).
        """
        self._check_open()
        instr = self.instr
        tracing = instr.enabled
        vbase = instr.tracer.virtual_now if tracing else 0.0
        clock = VirtualClock()
        history: list[list[StepStats]] = []
        step = 0
        active = True
        conns = self._conns
        while active and (max_supersteps is None or step < max_supersteps):
            wall0 = time.perf_counter() if tracing else 0.0
            for conn in conns:
                conn.send(("compute",))
            outs = [self._recv(conn) for conn in conns]
            routed: list[list] = [[] for _ in conns]
            for sender, (refs, _wall) in enumerate(outs):
                for ref in refs:
                    routed[ref.dest].append((sender, ref))
            for conn, inbox in zip(conns, routed):
                conn.send(("apply", inbox))
            votes, stats, probes, walls = [], [], [], []
            for i, conn in enumerate(conns):
                vote, machine_stats, probed, apply_wall = self._recv(conn)
                votes.append(vote)
                stats.append(machine_stats)
                probes.append(probed)
                walls.append(outs[i][1] + apply_wall)
            active = any(votes)
            clock.advance(self.netmodel.superstep_seconds(stats))
            if tracing:
                emit_superstep(
                    instr, self.netmodel, step, stats, clock, vbase,
                    wall0, time.perf_counter(), wall_compute=walls,
                )
            history.append(stats)
            step += 1
            if on_step is not None:
                control = on_step(step - 1, stats, clock.now, probes)
                if control is not None:
                    fn, args = control
                    self._broadcast(("call", fn, args, None))
        if tracing:
            instr.tracer.virtual_now = vbase + clock.now
        return EngineResult(
            supersteps=step,
            virtual_seconds=clock.now,
            per_step_seconds=list(clock.per_step),
            per_step_stats=history,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "live"
        return f"WorkerPool(workers={self.num_workers}, {state})"
