"""The persistent shared-memory worker pool: real multicore supersteps.

The simulated cluster executes every machine serially in one process and
*charges* a cost model; this module is the execution backend that actually
uses the cores.  One long-lived OS process per simulated machine attaches
the shared graph image once (:mod:`repro.runtime.shm`), keeps its
:class:`~repro.runtime.engine.PartitionTask` state resident across batches,
and runs the identical superstep protocol:

1. the coordinator broadcasts ``compute``; every worker expands its local
   frontier, combines its outbox per destination (exactly as
   :func:`~repro.runtime.comm.exchange_sync` would), writes the combined
   batches into its own shared-memory outbox segment, and replies with
   small :class:`~repro.runtime.shm.BatchRef` control records;
2. the coordinator routes the refs by destination and broadcasts ``apply``;
   every worker reads its inbound batches as zero-copy views (sender-
   ascending order — the same reduction order as the in-process inbox),
   verifies each batch's checksum, applies, finalizes, and votes;
3. the coordinator advances the same :class:`~repro.runtime.netmodel.
   VirtualClock` from the per-worker :class:`StepStats`, so virtual times
   are bit-identical to the in-process engine.

Only control records, stats and probe results cross the pipes; payload
arrays never leave shared memory.  The pool survives across batches
(``ensure_task`` re-arms resident task state), composing PR 1's
session-reuse win with real parallelism.

Fault tolerance: the coordinator checkpoints resident task state every
``FaultTolerance.checkpoint_interval`` supersteps and watches for worker
failures at every barrier — pipe EOF (crash), a reply missing past
``step_timeout`` (hang), outbound refs that contradict the worker's own
send accounting (dropped outbox), or a batch failing its checksum
(corruption).  Any failure rolls every worker back to the last checkpoint,
respawns the dead ones onto the *same* shared segments, and replays; the
replayed run is bit-identical (answers **and** virtual clocks) to a
fault-free run because the protocol is deterministic.  A run that spends
more than ``max_recoveries`` recoveries shuts the pool down and raises
:class:`~repro.errors.WorkerLost`, which the session's
:class:`~repro.runtime.fault.RetryPolicy` turns into fresh-pool retries
and, ultimately, transparent degradation to the in-process engine.

Determinism: the start method is always ``spawn`` (no inherited state),
each worker owns a :func:`numpy.random.default_rng` seeded from the pool
seed and its worker id, and shutdown is explicit
(:meth:`WorkerPool.shutdown`, wired to ``GraphSession.close()`` and
``atexit``) with a terminate fallback so pytest never leaks processes.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing as mp
import os
import secrets
import time
import traceback

import numpy as np

from repro.errors import CorruptMessage, PoolError, WorkerLost
from repro.graph.partition import PartitionedGraph, owner_of_bounds
from repro.runtime.cluster import Machine
from repro.runtime.engine import EngineResult, emit_superstep
from repro.runtime.fault import (
    CORRUPT_INBOX,
    CRASH,
    CRASH_EXIT_CODE,
    DELAY,
    DROP_OUTBOX,
    FaultInjector,
    FaultPlan,
    FaultTolerance,
)
from repro.runtime.message import MessageBatch, TaskBuffer, combine_or
from repro.runtime.netmodel import NetworkModel, StepStats, VirtualClock
from repro.runtime.shm import (
    OutboxReader,
    OutboxWriter,
    attach_graph,
    build_graph_image,
    create_segment,
)
from repro.runtime.supervisor import (
    MAIN_GUARD_HINT,
    Checkpoint,
    Supervisor,
    WorkerFailure,
)

__all__ = ["WorkerPool", "PoolError", "WorkerLost"]

log = logging.getLogger("repro.runtime.pool")

#: Upper bound on per-entry vertex-id bytes in a combined batch (int64).
_VERTEX_BYTES = 8


class _StepFailures(Exception):
    """Internal: one superstep's collected worker failures (recoverable)."""

    def __init__(self, failures: list[WorkerFailure]):
        super().__init__(f"{len(failures)} worker failure(s)")
        self.failures = failures


class _WorkerCluster:
    """The slice of :class:`SimCluster` a task can see inside a worker.

    Tasks only ever call ``cluster.owner_of`` — routing needs the bounds
    array (a shared view), nothing else.  ``rng`` is the worker's seeded
    generator, there for any task that needs deterministic randomness.
    """

    def __init__(self, bounds: np.ndarray, rng: np.random.Generator):
        self.bounds = bounds
        self.rng = rng

    def owner_of(self, vertices) -> np.ndarray | int:
        return owner_of_bounds(self.bounds, vertices)


def _worker_main(
    conn, manifest, worker_id: int, rng_seed: int, fault_events=None
) -> None:
    """One pool worker: attach the image once, then serve ops until close.

    Every callable received over the pipe (task builders, resetters,
    probes) must be a picklable module-level function — see
    :mod:`repro.core.adapters`.  ``fault_events`` is this worker's slice of
    the pool's :class:`~repro.runtime.fault.FaultPlan`; the worker enforces
    its own crash/delay/drop/corrupt schedule so injected faults exercise
    the identical detection paths real ones would.
    """
    image = attach_graph(manifest)
    machine = Machine(worker_id, image.partitions[worker_id])
    cluster = _WorkerCluster(image.bounds, np.random.default_rng(rng_seed))
    writer = OutboxWriter(worker_id)
    reader = OutboxReader()
    injector = FaultInjector(fault_events)
    tasks: dict = {}
    current = None
    combiner = combine_or
    probe = None
    probe_args: tuple = ()
    step_stats: StepStats | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # pragma: no cover - parent died
                break
            op = msg[0]
            try:
                if op == "compute":
                    step = msg[1]
                    if injector.take(CRASH, step) is not None:
                        # Die the hard way: no cleanup, no goodbye — the
                        # parent must see raw pipe EOF, like a real crash.
                        os._exit(CRASH_EXIT_CODE)
                    delay = injector.take(DELAY, step)
                    if delay is not None:
                        time.sleep(delay.seconds)
                    stats = StepStats()
                    t0 = time.perf_counter()
                    current.compute(stats)
                    writer.begin()
                    refs = []
                    outbox = machine.outbox
                    for dest in outbox.partitions():
                        merged = outbox.merged(dest, combiner=combiner)
                        if merged is None or merged.num_tasks == 0:
                            continue
                        if dest == worker_id:
                            raise AssertionError(
                                "local tasks must not go through the outbox"
                            )
                        stats.record_send(dest, merged.nbytes(), merged.num_tasks)
                        refs.append(
                            writer.write(dest, merged.vertices, merged.payload)
                        )
                    machine.outbox = TaskBuffer()
                    step_stats = stats
                    # The destinations the stats swear were sent to; the
                    # coordinator cross-checks them against the refs that
                    # actually arrived (dropped-outbox detection).
                    sent = sorted(stats.bytes_sent)
                    if injector.take(DROP_OUTBOX, step) is not None:
                        refs = []
                    conn.send(("out", refs, time.perf_counter() - t0, sent))
                elif op == "apply":
                    _, inbox, step = msg
                    t0 = time.perf_counter()
                    stats = step_stats if step_stats is not None else StepStats()
                    step_stats = None
                    corrupt = (
                        injector.take(CORRUPT_INBOX, step) if inbox else None
                    )
                    for sender, ref in inbox:
                        vertices, payload = reader.view(ref)
                        if corrupt is not None:
                            payload = payload.copy()
                            payload.view(np.uint8)[0] ^= 0xFF
                            corrupt = None
                        OutboxReader.verify(ref, vertices, payload)
                        machine.inbox.append(
                            sender, MessageBatch(vertices, payload)
                        )
                    current.apply_inbox(stats)
                    vote = current.finalize()
                    result = probe(current, *probe_args) if probe else None
                    conn.send(
                        ("step", vote, stats, result, time.perf_counter() - t0)
                    )
                elif op == "install":
                    _, key, build, kwargs = msg
                    machine.reset_buffers()
                    current = build(machine, cluster, **kwargs)
                    tasks[key] = current
                    conn.send(("ok", None))
                elif op == "reset":
                    _, key, reset, kwargs = msg
                    current = tasks[key]
                    reset(current, **kwargs)
                    conn.send(("ok", None))
                elif op == "seed":
                    for local_vertex, query in msg[1]:
                        current.seed(local_vertex, query)
                    conn.send(("ok", None))
                elif op == "arm":
                    _, combiner, probe, args = msg
                    probe_args = tuple(args) if args else ()
                    conn.send(("ok", None))
                elif op == "call":
                    _, fn, args, kwargs = msg
                    conn.send(("ok", fn(current, *args, **(kwargs or {}))))
                elif op == "checkpoint":
                    conn.send(("ok", current.checkpoint()))
                elif op == "restore":
                    # Roll back to a superstep barrier: task state from the
                    # snapshot, in-flight buffers dropped (they belong to
                    # the abandoned step).
                    current.restore(msg[1])
                    machine.reset_buffers()
                    step_stats = None
                    conn.send(("ok", None))
                elif op == "set_fault_plan":
                    injector.reset(msg[1])
                    conn.send(("ok", None))
                elif op == "outbox":
                    writer.attach(msg[1])
                    conn.send(("ok", None))
                elif op == "prepare":
                    machine.reset_buffers()
                    step_stats = None
                    conn.send(("ok", None))
                elif op == "close":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol misuse guard
                    raise RuntimeError(f"unknown op {op!r}")
            except CorruptMessage as exc:
                # Detected (or injected) corruption is an infrastructure
                # fault, not a task bug: report it as recoverable so the
                # coordinator replays from the checkpoint.
                conn.send(("fault", CORRUPT_INBOX, str(exc)))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        tasks.clear()
        current = None
        machine = None
        reader.close()
        writer.close()
        image.close()
        conn.close()


class WorkerPool:
    """A persistent pool of one process per partition of one graph.

    Created lazily by ``GraphSession(backend="pool")`` and reused for every
    batch until :meth:`shutdown`.  The parent owns every shared-memory
    segment (graph image + per-worker outboxes) and unlinks them all on
    shutdown; workers only ever attach — which is also what makes respawn
    cheap: a replacement worker re-attaches the existing image and outbox
    and restores task state from the last checkpoint.
    """

    def __init__(
        self,
        pg: PartitionedGraph,
        netmodel: NetworkModel | None = None,
        instrumentation=None,
        start_method: str = "spawn",
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        fault_tolerance: FaultTolerance | None = None,
        base_shards=None,
    ):
        from repro.telemetry.instrument import NULL_INSTRUMENTATION

        self.pg = pg
        self.netmodel = netmodel or NetworkModel()
        self.instr = instrumentation or NULL_INSTRUMENTATION
        self.num_workers = pg.num_partitions
        self.rng_seed = seed
        self.fault_tolerance = fault_tolerance or FaultTolerance()
        self._fault_plan = fault_plan
        self._fault_consumed: set[tuple[int, int]] = set()
        self._token = secrets.token_hex(4)
        # A dynamic session hands us its pristine base shards: partition
        # deltas are cumulative relative to the base image, so packing the
        # parent's spliced arrays would make workers double-apply them.
        self._image, manifest = build_graph_image(
            pg, f"cgp{self._token}", base_shards=base_shards
        )
        self._outboxes: list = [None] * self.num_workers
        self._outbox_width = 0
        self._outbox_gen = 0
        self._installed: set = set()
        self._current: tuple | None = None
        self._armed: tuple = (combine_or, None, [()] * self.num_workers)
        self._closed = False
        ctx = mp.get_context(start_method)
        self._sup = Supervisor(
            ctx, _worker_main, manifest, self._token, seed, self.num_workers
        )
        try:
            self._sup.spawn_all(
                fault_plan.events_for if fault_plan is not None else None
            )
        except Exception:
            self.shutdown()
            raise
        atexit.register(self.shutdown)

    # -- lifecycle --------------------------------------------------------- #

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def recoveries(self) -> int:
        """Workers respawned over this pool's lifetime (supervision metric)."""
        return self._sup.respawns

    def segment_names(self) -> list[str]:
        """Names of every live segment this pool owns (leak checks)."""
        segments = [self._image] + [s for s in self._outboxes if s is not None]
        return [s.name for s in segments]

    def shutdown(self) -> None:
        """Stop every worker and unlink every owned segment.

        Idempotent and exception-safe: safe to call twice, safe to call
        with workers already dead, safe from ``GraphSession.close()`` in an
        ``except`` block mid-superstep — the parent owns the segments, so
        they are unlinked no matter how the workers went away.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.shutdown)
        self._sup.shutdown()
        for shm in [self._image] + [s for s in self._outboxes if s is not None]:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except OSError:  # pragma: no cover - defensive
                log.warning("failed to unlink segment %s", shm.name, exc_info=True)
        self._outboxes = [None] * self.num_workers

    def _check_open(self) -> None:
        if self._closed:
            raise PoolError("worker pool is shut down")

    # -- pipe plumbing ------------------------------------------------------ #

    def _request(self, worker_id: int, message):
        """Strict send+recv for control ops: any failure is WorkerLost."""
        if not self._sup.send(worker_id, message):
            raise WorkerLost(
                f"pool worker {worker_id} is gone (pipe closed on send)."
                + MAIN_GUARD_HINT
            )
        reply = self._sup.recv(worker_id)
        if isinstance(reply, WorkerFailure):
            raise WorkerLost(f"pool {reply}")
        return reply

    def _broadcast(self, message) -> list:
        replies = []
        for i in range(self.num_workers):
            replies.append(self._request(i, message)[1])
        return replies

    def _send_each(self, messages) -> list:
        return [
            self._request(i, message)[1] for i, message in enumerate(messages)
        ]

    # -- batch protocol ------------------------------------------------------ #

    def ensure_task(
        self,
        key: tuple,
        build,
        build_kwargs: dict,
        reset,
        reset_kwargs: dict,
        payload_width: int,
    ) -> None:
        """Install a task on every worker, or reset the resident one.

        Mirrors ``GraphSession.tasks_for``: the first batch under ``key``
        builds task state inside each worker; later batches re-arm it in
        place.  ``payload_width`` (bytes per combined-batch entry) sizes the
        outbox segments.
        """
        self._check_open()
        self._ensure_outboxes(payload_width)
        # Remember how to rebuild the current task: a respawned worker gets
        # a fresh install of this build before its checkpoint restore.
        self._current = (key, build, build_kwargs)
        if key in self._installed:
            self._broadcast(("reset", key, reset, reset_kwargs))
        else:
            self._broadcast(("install", key, build, build_kwargs))
            self._installed.add(key)

    def _ensure_outboxes(self, payload_width: int) -> None:
        """Grow per-worker outbox segments to fit ``payload_width`` entries.

        A combined per-destination batch holds distinct vertices only, so a
        worker's whole outbox never exceeds ``min(out_edges, n)`` entries —
        a static bound that makes mid-superstep growth impossible.
        """
        if payload_width <= self._outbox_width and self._outboxes[0] is not None:
            return
        self._outbox_width = max(payload_width, self._outbox_width)
        self._outbox_gen += 1
        old = list(self._outboxes)
        messages = []
        for i, part in enumerate(self.pg.partitions):
            entries = min(part.num_out_edges, self.pg.num_vertices)
            capacity = (
                entries * (_VERTEX_BYTES + self._outbox_width)
                + 64 * self.num_workers
                + 1024
            )
            shm = create_segment(
                f"cgp{self._token}o{i}g{self._outbox_gen}", capacity
            )
            self._outboxes[i] = shm
            messages.append(("outbox", shm.name))
        self._send_each(messages)
        for shm in old:
            if shm is not None:
                shm.close()
                shm.unlink()

    def prepare(self) -> None:
        """Drop queued worker-side buffers before a batch."""
        self._check_open()
        self._broadcast(("prepare",))

    def seed(self, per_worker_seeds) -> None:
        """Deliver each worker its ``(local_vertex, query)`` seed list."""
        self._check_open()
        self._send_each([("seed", seeds) for seeds in per_worker_seeds])

    def arm(self, combiner=combine_or, probe=None, probe_args=None) -> None:
        """Set the run's combiner and optional per-step probe.

        ``probe(task, *args)`` runs worker-side after every finalize; its
        results arrive in machine order as the fourth ``on_step`` argument.
        ``probe_args`` is one tuple per worker (or None).
        """
        self._check_open()
        if probe_args is None:
            probe_args = [()] * self.num_workers
        self._armed = (combiner, probe, list(probe_args))
        self._send_each(
            [("arm", combiner, probe, args) for args in probe_args]
        )

    def gather(self, fn, *args, **kwargs) -> list:
        """Run ``fn(task, *args)`` on every worker; results in machine order."""
        self._check_open()
        return self._broadcast(("call", fn, args, kwargs))

    def set_fault_plan(self, plan: FaultPlan | None) -> None:
        """Adopt a new injection schedule on every live worker (test hook)."""
        self._check_open()
        self._fault_plan = plan
        self._fault_consumed = set()
        self._send_each(
            [
                ("set_fault_plan", plan.events_for(i) if plan is not None else [])
                for i in range(self.num_workers)
            ]
        )

    # -- supervision --------------------------------------------------------- #

    def _take_checkpoint(
        self, step: int, clock: VirtualClock, history: list
    ) -> Checkpoint:
        """Snapshot every worker's task state + the coordinator's clock."""
        states = self._broadcast(("checkpoint",))
        return Checkpoint(
            step=step,
            task_states=states,
            per_step_seconds=list(clock.per_step),
            history=list(history),
        )

    def _recover(
        self, failures: list[WorkerFailure], failed_step: int, ckpt: Checkpoint
    ) -> None:
        """Respawn the dead, then roll *every* worker back to ``ckpt``.

        One-shot fault events a dead worker's injector had already consumed
        (its in-memory fired-set died with it) are marked consumed on the
        coordinator side, so the replacement worker does not replay its own
        murder.  Sticky events are deliberately re-shipped — they model
        faults that survive any number of recoveries.
        """
        for f in failures:
            log.warning(
                "recovering from pool %s at superstep %d", f, failed_step
            )
            if f.kind not in ("crash", "hang"):
                # Live worker (dropped outbox / corrupt inbox): it replied,
                # its own injector already marked the event fired; nothing
                # to do beyond the restore below.  Deliberately NOT an
                # is_alive() probe: a crashed worker's pipe EOF can be
                # observed before the kernel finishes tearing the process
                # down, so liveness polls race with detection.
                continue
            events: list = []
            if self._fault_plan is not None:
                for e in self._fault_plan.events_for(f.worker_id):
                    if not e.sticky and e.step <= failed_step:
                        self._fault_consumed.add((f.worker_id, e.event_id))
                events = [
                    e
                    for e in self._fault_plan.events_for(f.worker_id)
                    if (f.worker_id, e.event_id) not in self._fault_consumed
                ]
            self._sup.respawn(f.worker_id, events)
            i = f.worker_id
            if self._outboxes[i] is not None:
                self._request(i, ("outbox", self._outboxes[i].name))
            if self._current is None:
                raise WorkerLost(
                    "cannot recover: no task was ever installed on this pool"
                )
            key, build, build_kwargs = self._current
            self._request(i, ("install", key, build, build_kwargs))
            combiner, probe, probe_args = self._armed
            self._request(i, ("arm", combiner, probe, probe_args[i]))
        # The replacement workers only have the current task resident.
        self._installed = {self._current[0]} if self._current else set()
        self._send_each([("restore", state) for state in ckpt.task_states])

    def _superstep(self, step: int, timeout: float | None):
        """One compute/route/apply round; raises _StepFailures on trouble.

        Both barriers *collect* failures instead of raising at the first
        one: every healthy worker's reply is drained first, so the pipes
        are at a clean protocol boundary when recovery starts.
        """
        sup = self._sup
        n = self.num_workers
        failures: list[WorkerFailure] = []
        pending = []
        for i in range(n):
            if sup.send(i, ("compute", step)):
                pending.append(i)
            else:
                failures.append(
                    WorkerFailure(i, CRASH, "pipe closed on compute send")
                )
        outs: dict[int, tuple] = {}
        for i in pending:
            reply = sup.recv(i, timeout)
            if isinstance(reply, WorkerFailure):
                failures.append(reply)
            else:
                outs[i] = reply[1:]  # (refs, wall, sent)
        for i, (refs, _wall, sent) in outs.items():
            dests = sorted({ref.dest for ref in refs})
            if dests != list(sent):
                failures.append(
                    WorkerFailure(
                        i,
                        DROP_OUTBOX,
                        f"send accounting names {list(sent)} but refs "
                        f"cover {dests}",
                    )
                )
        if failures:
            raise _StepFailures(failures)
        routed: list[list] = [[] for _ in range(n)]
        for sender in range(n):
            for ref in outs[sender][0]:
                routed[ref.dest].append((sender, ref))
        pending = []
        for i in range(n):
            if sup.send(i, ("apply", routed[i], step)):
                pending.append(i)
            else:
                failures.append(
                    WorkerFailure(i, CRASH, "pipe closed on apply send")
                )
        votes = [False] * n
        stats: list = [None] * n
        probes: list = [None] * n
        walls = [0.0] * n
        for i in pending:
            reply = sup.recv(i, timeout)
            if isinstance(reply, WorkerFailure):
                failures.append(reply)
                continue
            _tag, vote, machine_stats, probed, apply_wall = reply
            votes[i] = vote
            stats[i] = machine_stats
            probes[i] = probed
            walls[i] = outs[i][1] + apply_wall
        if failures:
            raise _StepFailures(failures)
        return votes, stats, probes, walls

    # -- the engine loop ----------------------------------------------------- #

    def run(
        self,
        max_supersteps: int | None = None,
        on_step=None,
        max_virtual_seconds: float | None = None,
    ) -> EngineResult:
        """Drive seeded worker tasks to quiescence (the parallel engine loop).

        Semantics mirror :meth:`SuperstepEngine.run` exactly — same step
        cap, same vote handling, same virtual clock — with two extensions:
        ``on_step(step_index, per_machine_stats, virtual_now, probe_results)``
        may return a ``(fn, args)`` control to broadcast to every worker
        before the next superstep (reachability's early termination), and
        ``max_virtual_seconds`` stops the run at the first barrier where the
        virtual clock has passed the deadline (``result.truncated``).

        Worker failures inside the loop are recovered transparently by
        checkpoint replay (see the module docstring); recovered runs return
        bit-identical results.  Past the recovery budget the pool shuts
        itself down (processes reaped, segments unlinked — nothing leaks)
        and raises :class:`~repro.errors.WorkerLost`.
        """
        self._check_open()
        ft = self.fault_tolerance
        instr = self.instr
        tracing = instr.enabled
        vbase = instr.tracer.virtual_now if tracing else 0.0
        clock = VirtualClock()
        history: list[list[StepStats]] = []
        step = 0
        active = True
        recoveries = 0
        # Telemetry high-water mark: replayed supersteps must not re-emit
        # spans/metrics, or recovered runs would double-count.
        emitted = 0
        try:
            ckpt = self._take_checkpoint(0, clock, history)
            while (
                active
                and (max_supersteps is None or step < max_supersteps)
                and (
                    max_virtual_seconds is None
                    or clock.now < max_virtual_seconds
                )
            ):
                wall0 = time.perf_counter() if tracing else 0.0
                try:
                    votes, stats, probes, walls = self._superstep(
                        step, ft.step_timeout
                    )
                except _StepFailures as exc:
                    recoveries += len(exc.failures)
                    for f in exc.failures:
                        instr.on_fault(f.kind)
                    if recoveries > ft.max_recoveries:
                        raise WorkerLost(
                            f"recovery budget exhausted ({recoveries} > "
                            f"{ft.max_recoveries}) at superstep {step}: "
                            + "; ".join(str(f) for f in exc.failures)
                        )
                    self._recover(exc.failures, step, ckpt)
                    step = ckpt.step
                    clock = VirtualClock()
                    for seconds in ckpt.per_step_seconds:
                        clock.advance(seconds)
                    history = list(ckpt.history)
                    active = True
                    instr.on_recovery()
                    continue
                active = any(votes)
                clock.advance(self.netmodel.superstep_seconds(stats))
                if tracing and step >= emitted:
                    emit_superstep(
                        instr, self.netmodel, step, stats, clock, vbase,
                        wall0, time.perf_counter(), wall_compute=walls,
                    )
                    emitted = step + 1
                history.append(stats)
                step += 1
                if on_step is not None:
                    control = on_step(step - 1, stats, clock.now, probes)
                    if control is not None:
                        fn, args = control
                        self._broadcast(("call", fn, args, None))
                if active and step % ft.checkpoint_interval == 0:
                    ckpt = self._take_checkpoint(step, clock, history)
                    instr.on_checkpoint()
        except WorkerLost:
            # Past saving for this batch: release processes and segments now
            # so an abandoned pool cannot leak them; the session's retry
            # policy decides what happens next (fresh pool or degradation).
            self.shutdown()
            raise
        if tracing:
            instr.tracer.virtual_now = vbase + clock.now
        return EngineResult(
            supersteps=step,
            virtual_seconds=clock.now,
            per_step_seconds=list(clock.per_step),
            per_step_stats=history,
            truncated=bool(
                active
                and max_virtual_seconds is not None
                and clock.now >= max_virtual_seconds
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "live"
        return f"WorkerPool(workers={self.num_workers}, {state})"
