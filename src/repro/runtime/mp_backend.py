"""Deprecated per-call multi-process k-hop — now a shim over the pool.

The original module spawned one process per machine *per call*, pickled the
partition arrays to each worker, ran one batch, and tore everything down —
paying full spawn + pickle cost every time.  That execution substrate now
lives in :mod:`repro.runtime.pool` as a first-class session backend: a
persistent worker pool with the graph image and message payloads in shared
memory, reused across batches.

:func:`mp_concurrent_khop` remains as a deprecated alias so existing
callers keep working: it builds a transient ``backend="pool"`` session,
runs the batch, and shuts the pool down.  New code should hold a session
instead::

    with GraphSession(edges, num_machines=4, backend="pool") as sess:
        result = sess.khop(sources, k)      # pool survives across batches
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.partition import PartitionedGraph, range_partition
from repro.runtime.session import GraphSession

__all__ = ["MPKHopResult", "mp_concurrent_khop"]


@dataclass
class MPKHopResult:
    """Reachability counts computed by the multi-process backend."""

    sources: np.ndarray
    k: int | None
    reached: np.ndarray
    supersteps: int
    num_machines: int


def mp_concurrent_khop(
    graph: EdgeList | PartitionedGraph,
    sources,
    k: int | None,
    num_machines: int = 2,
    start_method: str | None = None,
) -> MPKHopResult:
    """Deprecated: run one k-hop batch on a throwaway worker pool.

    Use ``GraphSession(graph, num_machines=p, backend="pool")`` instead —
    the pool persists across batches, which is the whole point.  Answers
    equal :func:`repro.core.khop.concurrent_khop` exactly.  ``start_method``
    is ignored: the pool always uses ``spawn`` for determinism.
    """
    warnings.warn(
        "mp_concurrent_khop is deprecated; use "
        "GraphSession(..., backend='pool') for a persistent worker pool",
        DeprecationWarning,
        stacklevel=2,
    )
    if isinstance(graph, PartitionedGraph):
        pg = graph
    else:
        pg = range_partition(graph, num_machines)
    with GraphSession(pg, backend="pool") as sess:
        result = sess.khop(sources, k)
    return MPKHopResult(
        sources=result.sources,
        k=k,
        reached=result.reached,
        supersteps=result.supersteps,
        num_machines=pg.num_partitions,
    )
