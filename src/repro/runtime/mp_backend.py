"""A real multi-process backend for concurrent k-hop batches.

The simulated cluster (:mod:`repro.runtime.engine`) executes all machines in
one process and charges a cost model; this module is the complementary
demonstration that the partition-centric protocol runs **over real process
boundaries**: one OS process per machine, numpy-buffer messages over pipes
(the mpi4py idiom of shipping arrays, not objects), a coordinator playing
the role of the interconnect, and a barrier per superstep — structurally the
paper's Socket/MPI deployment at laptop scale.

Answers are bit-identical to the in-process engine (the protocol is the
same); only the execution substrate differs.  Use it when you want actual
multicore parallelism for a large batch:

>>> from repro.runtime.mp_backend import mp_concurrent_khop
>>> result = mp_concurrent_khop(edges, sources=[0, 1, 2], k=3, num_machines=4)
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.core.frontier import MAX_BATCH_WIDTH, BitFrontier
from repro.graph.edgelist import EdgeList
from repro.graph.partition import Partition, PartitionedGraph, range_partition

__all__ = ["MPKHopResult", "mp_concurrent_khop"]


@dataclass
class MPKHopResult:
    """Reachability counts computed by the multi-process backend."""

    sources: np.ndarray
    k: int | None
    reached: np.ndarray
    supersteps: int
    num_machines: int


def _worker(
    conn,
    part_lo: int,
    part_hi: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    bounds: np.ndarray,
    num_queries: int,
    k: int | None,
    seeds: list[tuple[int, int]],
) -> None:
    """One machine: expand local frontier on command, exchange via the pipe.

    Protocol (coordinator -> worker):
      ("expand",)            -> reply ("out", [(dest, verts, bits), ...])
      ("inbox", batches)     -> apply, promote; reply ("alive", alive_bits)
      ("finish",)            -> reply ("visited", per_query_counts); exit
    """
    num_local = part_hi - part_lo
    state = BitFrontier(num_local, num_queries)
    for local_vertex, q in seeds:
        state.seed(local_vertex, q)
    level = 0
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "expand":
            out: list[tuple[int, np.ndarray, np.ndarray]] = []
            if k is None or level < k:
                active = state.active_vertices()
                if active.size:
                    bits = state.frontier[active]
                    starts = indptr[active]
                    ends = indptr[active + 1]
                    counts = ends - starts
                    pos = _expand_ranges(starts, ends)
                    targets = indices[pos]
                    ebits = np.repeat(bits, counts)
                    local_mask = (targets >= part_lo) & (targets < part_hi)
                    if local_mask.any():
                        state.or_into_next(
                            targets[local_mask] - part_lo, ebits[local_mask]
                        )
                    remote = ~local_mask
                    if remote.any():
                        rt, rb = targets[remote], ebits[remote]
                        owners = np.searchsorted(bounds, rt, side="right") - 1
                        for dest in np.unique(owners):
                            sel = owners == dest
                            out.append((int(dest), rt[sel], rb[sel]))
            conn.send(("out", out))
        elif kind == "inbox":
            for verts, bits in msg[1]:
                state.or_into_next(verts - part_lo, bits)
            state.promote()
            level += 1
            conn.send(("alive", int(state.alive_bits())))
        elif kind == "finish":
            conn.send(("visited", state.visited_counts()))
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse guard
            raise RuntimeError(f"unknown command {kind!r}")


def _expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    # local copy of the cumsum trick (workers must not import test helpers)
    from repro.graph.csr import expand_ranges

    return expand_ranges(starts, ends)


def mp_concurrent_khop(
    graph: EdgeList | PartitionedGraph,
    sources,
    k: int | None,
    num_machines: int = 2,
    start_method: str | None = None,
) -> MPKHopResult:
    """Run a concurrent k-hop batch with one OS process per machine.

    ``start_method`` defaults to the platform default (``fork`` on Linux,
    which shares the partition arrays copy-on-write).  Answers equal
    :func:`repro.core.khop.concurrent_khop` exactly.
    """
    if isinstance(graph, PartitionedGraph):
        pg = graph
    else:
        pg = range_partition(graph, num_machines)
    sources = np.asarray(sources, dtype=np.int64)
    num_queries = int(sources.size)
    if not 1 <= num_queries <= MAX_BATCH_WIDTH:
        raise ValueError(f"need 1..{MAX_BATCH_WIDTH} sources")
    if sources.size and (sources.min() < 0 or sources.max() >= pg.num_vertices):
        raise ValueError("source vertex out of range")

    ctx = mp.get_context(start_method) if start_method else mp.get_context()
    pipes = []
    procs = []
    seeds_per_machine: list[list[tuple[int, int]]] = [
        [] for _ in pg.partitions
    ]
    for q, s in enumerate(sources):
        pid = int(pg.owner_of(int(s)))
        seeds_per_machine[pid].append((int(s) - pg.partitions[pid].lo, q))
    for part in pg.partitions:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker,
            args=(
                child_conn,
                part.lo,
                part.hi,
                part.out_csr.indptr,
                part.out_csr.indices,
                pg.bounds,
                num_queries,
                k,
                seeds_per_machine[part.part_id],
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)

    supersteps = 0
    try:
        while True:
            # phase 1: all machines expand; coordinator collects outboxes
            for conn in pipes:
                conn.send(("expand",))
            routed: list[list[tuple[np.ndarray, np.ndarray]]] = [
                [] for _ in pipes
            ]
            for conn in pipes:
                kind, out = conn.recv()
                assert kind == "out"
                for dest, verts, bits in out:
                    routed[dest].append((verts, bits))
            # phase 2: deliver inboxes (the barrier), collect liveness votes
            alive = 0
            for conn, inbox in zip(pipes, routed):
                conn.send(("inbox", inbox))
            for conn in pipes:
                kind, bits = conn.recv()
                assert kind == "alive"
                alive |= bits
            supersteps += 1
            if alive == 0 or (k is not None and supersteps >= k):
                break
        reached = np.zeros(num_queries, dtype=np.int64)
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            kind, counts = conn.recv()
            assert kind == "visited"
            reached += counts
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()

    return MPKHopResult(
        sources=sources,
        k=k,
        reached=reached,
        supersteps=supersteps,
        num_machines=pg.num_partitions,
    )
