"""Persistent per-graph runtime state: build once, serve many batches.

The paper's deployment model (§1, §4) is a *service*: one partitioned graph
stays resident on the cluster while concurrent query batches and iterative
jobs arrive against it.  Before this module existed, every entry point in
:mod:`repro.core` rebuilt the world per call — re-partition, fresh
:class:`~repro.runtime.cluster.SimCluster`, new task list, one-shot engine.
:class:`GraphSession` owns that world for the session's lifetime:

* the :class:`~repro.graph.partition.PartitionedGraph` (built once),
* the :class:`SimCluster` and its :class:`~repro.runtime.netmodel.NetworkModel`,
* optional edge-set state, the cached undirected view (k-core), and
* per-algorithm task lists, *reset* between batches instead of reallocated.

Every algorithm entry point follows the same ``prepare → seed → run →
collect`` path on a session: :meth:`prepare` drops any queued messages
(:meth:`SimCluster.reset_buffers` — stale inbox traffic must never leak
into the next batch), :meth:`tasks_for` builds or re-arms one task per
machine, the caller seeds per-query state, and :meth:`run_batch` drives the
superstep engine.  One-shot calls construct a transient session through
:meth:`GraphSession.for_run`, so the single code path serves both modes.

Sessions are not thread-safe: one batch executes at a time (the admission
loop in :class:`~repro.runtime.scheduler.QueryService` serialises batches
onto the session and accounts response times on the virtual clock).

A session also selects its **execution backend**: ``backend="inproc"``
(default) runs every machine serially in this process; ``backend="pool"``
runs supersteps on a persistent shared-memory worker pool
(:mod:`repro.runtime.pool`) — one OS process per machine — for algorithms
with pool adapters (k-hop, wide batches, reachability, GAS/PageRank).
Answers and virtual times are bit-identical either way; only wall-clock
changes.  Pool sessions should be closed (:meth:`GraphSession.close` or
``with GraphSession(...) as sess:``) to stop the workers.
"""

from __future__ import annotations

import logging
import time
from typing import Callable

import numpy as np

from repro.errors import (
    DeadlineExceeded,
    InvalidQueryError,
    MutationError,
    WorkerLost,
)
from repro.graph.edgelist import EdgeList
from repro.graph.partition import PartitionedGraph, range_partition
from repro.runtime.cluster import Machine, SimCluster
from repro.runtime.engine import EngineResult, PartitionTask, SuperstepEngine
from repro.runtime.fault import FaultPlan, FaultTolerance, RetryPolicy
from repro.runtime.message import combine_or
from repro.runtime.netmodel import NetworkModel

__all__ = ["GraphSession"]

log = logging.getLogger("repro.runtime.session")


class _PatchedIndexBuild:
    """:class:`~repro.index.build.IndexBuild` facade over a freshly patched
    :class:`~repro.index.incremental.IncrementalIndex`.

    ``labels`` packs the twin's dicts back into frozen arrays on first
    access (and freezes the result: later patches go through a new facade,
    so a held reference keeps the labels it first observed).  This keeps
    ``apply_mutations`` free of per-batch repack cost when no query reads
    the index between batches.
    """

    pruned_visits = 0

    def __init__(self, inc, build_seconds: float, labeled_visits: int):
        self._inc = inc
        self.build_seconds = build_seconds
        self.labeled_visits = labeled_visits
        self._labels = None

    @property
    def labels(self):
        if self._labels is None:
            self._labels = self._inc.finalize()
        return self._labels


class GraphSession:
    """The resident runtime for one graph: cluster, cost model, task state.

    Parameters
    ----------
    graph:
        An :class:`EdgeList` (partitioned here into ``num_machines`` ranges)
        or a pre-partitioned :class:`PartitionedGraph` (adopted as-is).
    num_machines:
        Partition count when ``graph`` is an edge list.
    netmodel:
        Virtual-time cost model shared by every batch (calibrated default
        if omitted).
    edge_sets:
        Build the blocked edge-set representation eagerly (§3.2) so
        traversal batches can run with ``use_edge_sets=True``.
    instrumentation:
        A :class:`~repro.telemetry.Instrumentation` shared by every batch,
        the cluster/engine, the query service and the index planner; the
        no-op :data:`~repro.telemetry.NULL_INSTRUMENTATION` by default, so
        telemetry is opt-in and near-free when off.
    backend:
        ``"inproc"`` (default) executes every machine serially inside this
        process on the :class:`SimCluster`; ``"pool"`` executes supersteps
        on a persistent :class:`~repro.runtime.pool.WorkerPool` — one OS
        process per machine, shards and message payloads in shared memory
        — started lazily on the first batch and stopped by :meth:`close`.
        Results are bit-identical between backends.  Algorithms without a
        pool adapter (SSSP, k-core, async/edge-set modes) keep the
        in-process path on a pool session.
    pool_seed:
        Base seed for the pool workers' per-process RNGs (determinism).
    retry_policy:
        How a pool batch that loses its workers is retried
        (:class:`~repro.runtime.fault.RetryPolicy`): fresh-pool attempts
        with exponential backoff, an optional wall-clock deadline, and —
        by default — transparent degradation to the in-process engine when
        the budget is exhausted.  Answers stay bit-identical either way.
    fault_tolerance:
        The supervisor's knobs (:class:`~repro.runtime.fault.FaultTolerance`):
        checkpoint interval, per-step hang timeout, recovery budget.
        Shared by the pool coordinator and the in-process resilient path.
    fault_plan:
        A deterministic :class:`~repro.runtime.fault.FaultPlan` injection
        schedule (tests/chaos only).  On a pool session it is threaded into
        the workers; on an in-process session it arms the cluster's
        injector.  The degraded fallback never re-injects.
    """

    def __init__(
        self,
        graph: EdgeList | PartitionedGraph,
        num_machines: int = 1,
        netmodel: NetworkModel | None = None,
        edge_sets: bool = False,
        sets_per_partition: int = 8,
        consolidate_min_edges: int | None = None,
        instrumentation=None,
        backend: str = "inproc",
        pool_seed: int = 0,
        retry_policy: RetryPolicy | None = None,
        fault_tolerance: FaultTolerance | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        from repro.telemetry.instrument import NULL_INSTRUMENTATION

        if backend not in ("inproc", "pool"):
            raise ValueError(f"backend must be 'inproc' or 'pool', got {backend!r}")
        self.instr = instrumentation or NULL_INSTRUMENTATION
        # dynamic-graph state (enabled lazily by dynamic()); initialised
        # before build_edge_sets below, which consults it
        self._dynamic = None  # DynamicGraph
        self._index_epoch = 0  # graph epoch the resident index matches
        self._inc_index = None  # IncrementalIndex twin of the labels
        self._index_maintenance = "incremental"
        self._compact_interval: int | None = None
        self._index_churn_threshold = 0.02
        self._mutation_batches = 0
        self._durability = None  # DurabilityManager, via enable_durability()
        if isinstance(graph, PartitionedGraph):
            self.pg = graph
        else:
            self.pg = range_partition(graph, num_machines)
        if edge_sets:
            self.build_edge_sets(sets_per_partition, consolidate_min_edges)
        self.netmodel = netmodel or NetworkModel()
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_tolerance = fault_tolerance or FaultTolerance()
        self.fault_plan = fault_plan
        self.cluster = SimCluster(
            self.pg,
            self.netmodel,
            self.instr,
            fault_plan=fault_plan if backend == "inproc" else None,
            fault_tolerance=self.fault_tolerance,
        )
        self.backend = backend
        self.pool_seed = pool_seed
        self._pool = None  # WorkerPool, started lazily by pool()
        self._degraded = False
        self._fallback_tasks: list[PartitionTask] | None = None
        self.pool_failures = 0
        self.degraded_batches = 0
        self.batches_run = 0
        self._task_cache: dict[tuple, list[PartitionTask]] = {}
        self._undirected_pg: PartitionedGraph | None = None
        self._service_cache: dict[tuple, float] = {}
        self._index_build = None  # IndexBuild, cached by index_build()

    # -- construction helpers ---------------------------------------------- #

    @classmethod
    def for_run(
        cls,
        graph: "EdgeList | PartitionedGraph | GraphSession",
        num_machines: int = 1,
        netmodel: NetworkModel | None = None,
        session: "GraphSession | None" = None,
    ) -> "GraphSession":
        """Resolve the session one entry-point call runs on.

        An explicit ``session`` (or a session passed as the graph) is reused
        — its graph, cluster and network model win over the other arguments.
        Otherwise a transient session is built, which is exactly the old
        rebuild-per-call behaviour.
        """
        if session is not None:
            return session
        if isinstance(graph, GraphSession):
            return graph
        return cls(graph, num_machines=num_machines, netmodel=netmodel)

    # -- the parallel backend ----------------------------------------------- #

    @property
    def uses_pool(self) -> bool:
        """True when batches with a pool adapter run on worker processes."""
        return self.backend == "pool"

    def pool(self):
        """The session's :class:`~repro.runtime.pool.WorkerPool`, started
        lazily on first use (one spawn per machine, graph image shared)."""
        if not self.uses_pool:
            raise RuntimeError("session backend is 'inproc'; no pool to start")
        if self._pool is None:
            from repro.runtime.pool import WorkerPool

            with self.instr.span("pool start", cat="pool"):
                self._pool = WorkerPool(
                    self.pg,
                    netmodel=self.netmodel,
                    instrumentation=self.instr,
                    seed=self.pool_seed,
                    fault_plan=self.fault_plan,
                    fault_tolerance=self.fault_tolerance,
                    # Pool deltas are cumulative relative to the base image;
                    # a pool started after mutations must pack the pristine
                    # base shards, not the spliced arrays.
                    base_shards=(
                        self._dynamic._base_shards
                        if self._dynamic is not None
                        else None
                    ),
                )
        return self._pool

    @property
    def degraded(self) -> bool:
        """True once pool batches fell back to the in-process engine."""
        return self._degraded

    def reset_degradation(self) -> None:
        """Forget a degradation: the next pool batch tries workers again."""
        self._degraded = False
        self._fallback_tasks = None

    def set_fault_plan(self, plan: FaultPlan | None) -> None:
        """Adopt an injection schedule for subsequent batches (test hook).

        Pool sessions arm the live workers (and any pool started later);
        in-process sessions arm the cluster's injector.  Never both — the
        degraded fallback of a pool session must run fault-free, or a
        sticky fault would chase the batch down the degradation ladder.
        """
        self.fault_plan = plan
        if self.uses_pool:
            if self._pool is not None and not self._pool.closed:
                self._pool.set_fault_plan(plan)
        else:
            self.cluster.set_fault_plan(plan)

    def close(self) -> None:
        """Stop the worker pool (processes + shared memory), if started.

        Idempotent and exception-safe: closing twice, closing a session
        whose workers already died, or closing mid-batch from an ``except``
        block never raises and never leaks a shared-memory segment (the
        parent owns them all and unlinks unconditionally).  The session
        remains usable — the next pool batch starts a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown()
        except Exception:  # pragma: no cover - defensive
            log.warning("pool shutdown raised; segments may leak", exc_info=True)

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure --------------------------------------------------------- #

    @property
    def num_vertices(self) -> int:
        return self.pg.num_vertices

    @property
    def num_edges(self) -> int:
        return self.pg.num_edges

    @property
    def num_machines(self) -> int:
        return self.pg.num_partitions

    @property
    def has_edge_sets(self) -> bool:
        return all(p.edge_sets is not None for p in self.pg.partitions)

    def build_edge_sets(
        self, sets_per_partition: int = 8, consolidate_min_edges: int | None = None
    ) -> None:
        """Tile partitions into LLC-sized edge-sets (§3.2), once."""
        if self._dynamic is not None:
            raise MutationError(
                "edge-set mode is a static representation; it cannot be "
                "combined with a dynamic (mutable) session"
            )
        if any(p.edge_sets is None for p in self.pg.partitions):
            self.pg.build_edge_sets(sets_per_partition, consolidate_min_edges)

    # -- the dynamic graph (lazy import: dynamic depends on graph only) ----- #

    @property
    def is_dynamic(self) -> bool:
        """True once :meth:`dynamic` enabled streaming mutations."""
        return self._dynamic is not None

    @property
    def graph_epoch(self) -> int:
        """The resident graph's version counter (0 for a static session)."""
        return self._dynamic.epoch if self._dynamic is not None else 0

    @property
    def index_is_current(self) -> bool:
        """Whether the resident index (if any) matches the graph epoch."""
        return self._index_epoch == self.graph_epoch

    def dynamic(
        self,
        index_maintenance: str = "incremental",
        compact_interval: int | None = None,
        churn_threshold: float = 0.02,
    ):
        """Enable streaming mutations; returns the resident
        :class:`~repro.dynamic.delta.DynamicGraph` (idempotent — the
        configuration arguments only apply on the first call).

        ``index_maintenance`` controls what happens to a resident hub-label
        index when mutations land: ``"incremental"`` (default) patches it
        in place via resumption/repair BFS and falls back to a full
        rebuild past ``churn_threshold`` cumulative churn; ``"rebuild"``
        rebuilds fully on every mutated batch; ``"none"`` lets it go stale
        (the hybrid planner then routes point queries back to traversal).
        ``compact_interval`` folds the pending delta into a new base every
        that many mutated batches.
        """
        if self._dynamic is None:
            if index_maintenance not in ("incremental", "rebuild", "none"):
                raise ValueError(
                    "index_maintenance must be 'incremental', 'rebuild' "
                    "or 'none'"
                )
            if compact_interval is not None and compact_interval < 1:
                raise ValueError("compact_interval must be >= 1")
            if any(p.edge_sets is not None for p in self.pg.partitions):
                raise MutationError(
                    "edge-set mode is a static representation; drop it "
                    "before enabling mutations"
                )
            from repro.dynamic.delta import DynamicGraph

            self._dynamic = DynamicGraph(self.pg)
            self._index_maintenance = index_maintenance
            self._compact_interval = compact_interval
            self._index_churn_threshold = float(churn_threshold)
        return self._dynamic

    def snapshots(self):
        """A :class:`~repro.dynamic.snapshot.SnapshotStore` replaying any
        past epoch of the (dynamic) resident graph."""
        from repro.dynamic.snapshot import SnapshotStore

        return SnapshotStore.of(self.dynamic())

    # -- durability (lazy import: durability depends on dynamic + index) ----- #

    @property
    def is_durable(self) -> bool:
        """True while a :class:`~repro.runtime.durability.DurabilityManager`
        is attached (mutations are WAL'd, checkpoints are periodic)."""
        return self._durability is not None

    def enable_durability(
        self,
        wal_dir,
        *,
        fsync: str = "batch",
        checkpoint_every: int | None = 8,
        retain: int = 2,
        fault_plan=None,
    ):
        """Make this session crash-recoverable: WAL every mutation batch
        under ``wal_dir`` and checkpoint every ``checkpoint_every`` batches.

        Enables the dynamic layer if needed (call :meth:`dynamic` first to
        pick non-default maintenance/compaction settings), takes a baseline
        checkpoint when the directory holds none, and returns the attached
        :class:`~repro.runtime.durability.DurabilityManager` (idempotent).
        A later crash is survived by :meth:`GraphSession.restore` on the
        same directory.
        """
        if self._durability is not None:
            return self._durability
        from repro.runtime.durability import DurabilityManager

        self.dynamic()
        return DurabilityManager(
            self,
            wal_dir,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            retain=retain,
            fault_plan=fault_plan,
        ).attach()

    @classmethod
    def restore(cls, wal_dir, **kwargs):
        """Recover a session from a durable directory: newest valid
        checkpoint + WAL-suffix replay, to the exact pre-crash epoch (see
        :func:`repro.runtime.durability.recover_session` for knobs)."""
        from repro.runtime.durability import recover_session

        return recover_session(wal_dir, **kwargs)

    def apply_mutations(self, inserts=(), deletes=()):
        """Apply one edge-mutation batch to the resident graph.

        The one write path of the dynamic layer: splices the touched
        partitions' effective shards in place (advancing the graph epoch),
        invalidates every epoch-dependent cache, maintains the resident
        index per the session's maintenance mode, and triggers compaction
        on the configured interval.  Returns the
        :class:`~repro.dynamic.delta.MutationResult` (``.changed`` is
        False — and nothing else happens — for an all-no-op batch).
        """
        dg = self.dynamic()
        # An incremental patch needs the pre-mutation adjacency, so the
        # index twin must exist before the graph changes underneath it.
        maintain = (
            self._index_maintenance == "incremental"
            and self._index_build is not None
            and self.index_is_current
        )
        if maintain and self._inc_index is None:
            from repro.index.incremental import IncrementalIndex

            self._inc_index = IncrementalIndex.from_graph(
                self.index(), self.pg,
                churn_threshold=self._index_churn_threshold,
            )
        with self.instr.span("apply mutations", cat="dynamic"):
            res = dg.apply(inserts, deletes)
        if not res.changed:
            return res
        self._invalidate_epoch_caches()
        if self.instr.enabled:
            if res.inserted.size:
                self.instr.on_mutation("insert", res.inserted.shape[0])
            if res.deleted.size:
                self.instr.on_mutation("delete", res.deleted.shape[0])
            self.instr.on_epoch(dg.epoch)
        if self._index_build is not None:
            if maintain:
                self._patch_index(res)
            elif self._index_maintenance == "rebuild":
                self._rebuild_index_for_epoch()
            # "none" (or an already-stale index): leave it; consumers must
            # consult index_is_current before trusting it.
        self._mutation_batches += 1
        # WAL-append before the caller is acknowledged (and before any
        # auto-compaction, which write-ahead-logs itself via compact()).
        if self._durability is not None:
            self._durability.on_mutation(res)
        if (
            self._compact_interval is not None
            and self._mutation_batches % self._compact_interval == 0
        ):
            self.compact()
        return res

    def compact(self):
        """Fold pending deltas into a new base (see
        :meth:`~repro.dynamic.delta.DynamicGraph.compact`).

        Advances the epoch without changing the graph; the pool is closed
        because its shm image holds the old base arrays — the next pool
        batch packs a fresh image from the compacted graph.
        """
        dg = self.dynamic()
        # True write-ahead: the compaction's record is durable before the
        # fold, so a crash in between replays to the exact epoch.
        if self._durability is not None:
            self._durability.log_compaction(dg.epoch + 1)
        with self.instr.span("compact", cat="dynamic"):
            res = dg.compact()
        self._invalidate_epoch_caches()
        self.close()
        if self.instr.enabled:
            self.instr.on_compaction()
            self.instr.on_epoch(dg.epoch)
        # Compaction is representation-only: an index current for the
        # pre-compaction epoch is current for the post-compaction one.
        if self._index_epoch == res.epoch - 1:
            self._index_epoch = res.epoch
        return res

    def _invalidate_epoch_caches(self) -> None:
        """Drop every cache keyed on (or derived from) the graph's edges."""
        self._task_cache.clear()
        self._service_cache.clear()
        self._undirected_pg = None

    def _patch_index(self, res) -> None:
        patch = self._inc_index.apply(res.inserted, res.deleted)
        if patch.needs_rebuild:
            self._rebuild_index_for_epoch()
            return
        self.instr.on_index_patch(patch.entries_patched)
        # Packing the patched labels back into frozen arrays is deferred
        # to the first consumer (planner/dist query): a mutation burst
        # with no interleaved index reads pays one repack, not one per
        # batch.
        self._index_build = _PatchedIndexBuild(
            self._inc_index,
            build_seconds=patch.seconds,
            labeled_visits=patch.entries_patched,
        )
        self._index_epoch = self.graph_epoch

    def _rebuild_index_for_epoch(self) -> None:
        from repro.index.build import build_hub_labels

        with self.instr.span("index build", cat="index"):
            self._index_build = build_hub_labels(self.pg)
        self._index_epoch = self.graph_epoch
        self._inc_index = None  # rebuilt from the current graph on demand

    # -- the reachability index (lazy import: index depends on graph only) -- #

    @property
    def has_index(self) -> bool:
        return self._index_build is not None

    def index_build(self, rebuild: bool = False):
        """Build (once) and return the index with its build accounting."""
        from repro.index.build import build_hub_labels

        if self._index_build is None or rebuild:
            with self.instr.span("index build", cat="index"):
                self._index_build = build_hub_labels(self.pg)
            self._index_epoch = self.graph_epoch
            self._inc_index = None
        return self._index_build

    def index(self, rebuild: bool = False):
        """The resident :class:`~repro.index.labels.HubLabels`, built once.

        The pruned distance-label index is the session's second query
        engine: point reachability answers in label-intersection time,
        amortising one build over every later query (the hybrid planner in
        :class:`~repro.runtime.scheduler.QueryService` routes to it).
        """
        return self.index_build(rebuild=rebuild).labels

    def set_index(self, labels) -> None:
        """Adopt a prebuilt/loaded index (e.g. from ``.npz``) as resident."""
        from repro.index.build import IndexBuild

        if labels.num_vertices != self.num_vertices:
            raise ValueError(
                f"index covers {labels.num_vertices} vertices, "
                f"graph has {self.num_vertices}"
            )
        self._index_build = IndexBuild(
            labels=labels, build_seconds=0.0, labeled_visits=0, pruned_visits=0
        )
        self._index_epoch = self.graph_epoch
        self._inc_index = None

    def index_planner(self):
        """An :class:`~repro.index.planner.IndexPlanner` over the resident
        index, charged against this session's cost model."""
        from repro.index.planner import IndexPlanner

        return IndexPlanner(self.index(), self.netmodel, self.instr)

    def undirected_pg(self) -> PartitionedGraph:
        """The partitioned undirected simple view, built once (k-core)."""
        if self._undirected_pg is None:
            simple = (
                self.pg.edges.symmetrize().remove_self_loops().deduplicate()
            )
            self._undirected_pg = range_partition(simple, self.num_machines)
        return self._undirected_pg

    # -- the prepare → seed → run path -------------------------------------- #

    def prepare(self) -> None:
        """Reset shared cluster state before a batch.

        Drops any queued inbox/outbox messages so traffic from a previous
        (possibly aborted) batch can never leak into this one.
        """
        with self.instr.span("session prepare", cat="session"):
            self.cluster.reset_buffers()
            if self._pool is not None:
                self._pool.prepare()

    def _as_vertex_ids(self, ids, name: str) -> np.ndarray:
        """Coerce to int64 vertex ids; reject lossy or out-of-range input."""
        arr = np.asarray(ids)
        if arr.dtype == object or arr.dtype.kind not in "iuf":
            raise InvalidQueryError(f"{name} must be integer vertex ids")
        out = arr.astype(np.int64)
        if arr.dtype.kind == "f" and not np.array_equal(out, arr):
            raise InvalidQueryError(f"{name} must be integer vertex ids")
        if out.size and (out.min() < 0 or out.max() >= self.pg.num_vertices):
            raise InvalidQueryError(f"{name.rstrip('s')} vertex out of range")
        return out

    def check_sources(self, sources, max_width: int) -> np.ndarray:
        """Validate a batch's source vertices against the resident graph."""
        sources = self._as_vertex_ids(sources, "sources")
        num_queries = int(sources.size)
        if not 1 <= num_queries <= max_width:
            raise InvalidQueryError(
                f"need 1..{max_width} sources, got {num_queries}"
            )
        return sources

    def check_targets(self, targets, num_queries: int) -> np.ndarray:
        """Validate a batch's target vertices (same checks as sources).

        Targets must align one-to-one with the batch's sources; bad ids
        raise a clean :class:`ValueError` instead of silently misindexing
        (float truncation) or raising deep inside the engine.
        """
        targets = self._as_vertex_ids(targets, "targets")
        if int(targets.size) != num_queries:
            raise InvalidQueryError(
                f"need one target per source, got {targets.size} targets "
                f"for {num_queries} sources"
            )
        return targets

    def tasks_for(
        self,
        cache_key: tuple | None,
        factory: Callable[[Machine], PartitionTask],
        reset: Callable[[PartitionTask], None] | None = None,
    ) -> list[PartitionTask]:
        """One task per machine: built on first use, *reset* on reuse.

        With a ``cache_key`` and a ``reset`` callable, the task list built
        for that key on a previous batch is re-armed in place (frontier
        planes zeroed, level counters rewound) instead of reallocated.
        Without them the tasks are rebuilt every call.

        On a dynamic session the graph epoch is joined into the key, so
        resident task state never straddles two graph versions (the whole
        cache is also dropped on every epoch advance).
        """
        if cache_key is not None and self._dynamic is not None:
            cache_key = cache_key + (self._dynamic.epoch,)
        if cache_key is not None and reset is not None:
            cached = self._task_cache.get(cache_key)
            if cached is not None:
                for task in cached:
                    reset(task)
                return cached
        tasks = [factory(m) for m in self.cluster.machines]
        if cache_key is not None and reset is not None:
            self._task_cache[cache_key] = tasks
        return tasks

    def seed_owners(self, sources) -> np.ndarray:
        """Owning machine of each seed vertex (QoS affinity batching)."""
        return self.cluster.owner_of(np.asarray(sources, dtype=np.int64))

    def seeds_by_machine(self, sources: np.ndarray) -> list[list[tuple[int, int]]]:
        """Group a batch's sources as ``(local_vertex, query)`` per machine."""
        per_machine: list[list[tuple[int, int]]] = [
            [] for _ in range(self.num_machines)
        ]
        owners = self.cluster.owner_of(sources)
        bounds = self.pg.bounds[owners]
        for q, (s, o, lo) in enumerate(zip(sources, owners, bounds)):
            per_machine[int(o)].append((int(s) - int(lo), q))
        return per_machine

    def seed_sources(self, tasks: list[PartitionTask], sources: np.ndarray) -> None:
        """Place query ``q``'s source on its owning machine's task."""
        for task, seeds in zip(tasks, self.seeds_by_machine(sources)):
            for local_vertex, q in seeds:
                task.seed(local_vertex, q)

    def run_batch(
        self,
        tasks: list[PartitionTask],
        combiner=combine_or,
        asynchronous: bool = False,
        parallel_compute: bool = False,
        max_supersteps: int | None = None,
        on_step=None,
        max_virtual_seconds: float | None = None,
    ) -> EngineResult:
        """Drive one batch of seeded tasks to quiescence on the cluster."""
        engine = SuperstepEngine(
            self.cluster,
            tasks,
            combiner=combiner,
            asynchronous=asynchronous,
            parallel_compute=parallel_compute,
        )
        with self.instr.span(
            f"run batch {self.batches_run}", cat="batch",
            query_batch=self.batches_run,
        ):
            result = engine.run(
                max_supersteps=max_supersteps,
                on_step=on_step,
                max_virtual_seconds=max_virtual_seconds,
            )
        self.batches_run += 1
        return result

    def run_batch_pool(
        self,
        cache_key: tuple,
        build,
        build_kwargs: dict,
        reset,
        reset_kwargs: dict,
        payload_width: int,
        seeds=None,
        combiner=combine_or,
        max_supersteps: int | None = None,
        on_step=None,
        probe=None,
        probe_args=None,
        max_virtual_seconds: float | None = None,
    ) -> EngineResult:
        """Drive one batch on the worker pool (the parallel twin of
        :meth:`tasks_for` + :meth:`seed_sources` + :meth:`run_batch`).

        ``build``/``reset`` and the optional ``probe`` must be picklable
        module-level functions (see :mod:`repro.core.adapters`); resident
        worker-side task state under ``cache_key`` is re-armed across
        batches exactly like the in-process task cache.

        Failure handling is layered (the degradation ladder): worker
        failures *within* an attempt are recovered by the pool's own
        checkpoint replay; an attempt that exhausts its recovery budget
        raises :class:`~repro.errors.WorkerLost`, the broken pool is torn
        down (no leaked processes or segments) and the batch is retried on
        a fresh pool per :attr:`retry_policy`; once attempts (or the wall
        deadline) run out, the batch transparently degrades to the
        in-process engine — same adapters, same seeds, bit-identical
        answers — and the session stays degraded for later batches.  A
        :class:`~repro.errors.WorkerTaskError` (the task itself raised) is
        deterministic and propagates immediately: a retry cannot help.

        On a dynamic session the graph epoch joins the install key, and —
        while mutations are pending against the base image — ``build`` is
        wrapped with :func:`~repro.dynamic.delta.build_with_delta` so pool
        workers splice their attached shard up to the current epoch before
        building task state.  The shm image itself is only repacked on
        compaction (which closes the pool).
        """
        if self._dynamic is not None:
            cache_key = cache_key + (self._dynamic.epoch,)
            deltas = self._dynamic.pool_deltas()
            if deltas is not None:
                from repro.dynamic.delta import build_with_delta

                build_kwargs = {
                    "_inner_build": build, "_deltas": deltas, **build_kwargs
                }
                build = build_with_delta
        if self._degraded:
            return self._run_batch_degraded(
                build, build_kwargs, seeds, combiner, max_supersteps,
                on_step, probe, probe_args, max_virtual_seconds,
            )
        policy = self.retry_policy
        started = time.monotonic()
        attempt = 0
        last_exc: WorkerLost | None = None
        while True:
            attempt += 1
            try:
                pool = self.pool()
                pool.ensure_task(
                    cache_key, build, build_kwargs, reset, reset_kwargs,
                    payload_width,
                )
                if seeds is not None:
                    pool.seed(seeds)
                pool.arm(combiner=combiner, probe=probe, probe_args=probe_args)
                with self.instr.span(
                    f"run batch {self.batches_run}", cat="batch",
                    query_batch=self.batches_run,
                ):
                    result = pool.run(
                        max_supersteps=max_supersteps,
                        on_step=on_step,
                        max_virtual_seconds=max_virtual_seconds,
                    )
                self.batches_run += 1
                self._fallback_tasks = None
                return result
            except WorkerLost as exc:
                last_exc = exc
                self.pool_failures += 1
                log.warning(
                    "pool attempt %d/%d lost: %s",
                    attempt, policy.max_attempts, exc,
                )
                # Tear the broken pool down *now*: run() already shut it
                # down on WorkerLost, but close() also drops our handle and
                # is the single place that guarantees no segment leaks.
                self.close()
                out_of_time = (
                    policy.deadline is not None
                    and time.monotonic() - started >= policy.deadline
                )
                if attempt < policy.max_attempts and not out_of_time:
                    self.instr.on_pool_retry()
                    time.sleep(policy.backoff(attempt))
                    continue
                if policy.degrade:
                    break
                if out_of_time and attempt < policy.max_attempts:
                    raise DeadlineExceeded(
                        f"pool retry deadline ({policy.deadline:g}s) passed "
                        f"after {attempt} attempt(s)"
                    ) from exc
                raise
        self._degraded = True
        self.instr.on_degrade()
        log.warning(
            "degrading to the in-process engine after %d failed pool "
            "attempt(s): %s", attempt, last_exc,
        )
        return self._run_batch_degraded(
            build, build_kwargs, seeds, combiner, max_supersteps,
            on_step, probe, probe_args, max_virtual_seconds,
        )

    def _run_batch_degraded(
        self,
        build,
        build_kwargs: dict,
        seeds,
        combiner,
        max_supersteps: int | None,
        on_step,
        probe,
        probe_args,
        max_virtual_seconds: float | None,
    ) -> EngineResult:
        """One pool batch served by the in-process engine instead.

        Builds tasks through the *same* pool adapters the workers would
        have used, replays the seeds, and emulates the pool's ``on_step``
        contract (worker-side probes, broadcast controls) so entry points
        cannot tell the backends apart — answers and virtual clocks are
        bit-identical.  The tasks are kept for :meth:`gather_batch`.
        """
        self.degraded_batches += 1
        self.cluster.reset_buffers()
        tasks = [
            build(machine, self.cluster, **build_kwargs)
            for machine in self.cluster.machines
        ]
        if seeds is not None:
            for task, per_machine in zip(tasks, seeds):
                for local_vertex, q in per_machine:
                    task.seed(local_vertex, q)
        args_by_machine = (
            list(probe_args) if probe_args is not None else [()] * len(tasks)
        )

        def wrapped(step_index, stats, now):
            probes = None
            if probe is not None:
                probes = [
                    probe(task, *args_by_machine[i])
                    for i, task in enumerate(tasks)
                ]
            control = on_step(step_index, stats, now, probes)
            if control is not None:
                fn, fargs = control
                for task in tasks:
                    fn(task, *fargs)

        result = self.run_batch(
            tasks,
            combiner=combiner,
            max_supersteps=max_supersteps,
            on_step=wrapped if on_step is not None else None,
            max_virtual_seconds=max_virtual_seconds,
        )
        self._fallback_tasks = tasks
        return result

    def gather_batch(self, fn, *args) -> list:
        """Collect ``fn(task, *args)`` per machine for the last pool batch.

        The backend-agnostic twin of ``pool().gather``: on a healthy pool
        session it asks the workers; on a degraded one it reads the
        in-process fallback tasks.  Entry points use this so degradation
        stays invisible to them.
        """
        if self._degraded and self._fallback_tasks is not None:
            return [fn(task, *args) for task in self._fallback_tasks]
        return self.pool().gather(fn, *args)

    # -- algorithm conveniences (lazy imports: core depends on runtime) ----- #

    def khop(self, sources, k: int | None, **kwargs):
        """One bit-parallel batch of up to 64 concurrent k-hop queries."""
        from repro.core.khop import concurrent_khop

        return concurrent_khop(self.pg, sources, k, session=self, **kwargs)

    def bfs(self, sources, **kwargs):
        """Concurrent full BFS (the k → ∞ case) on the resident graph."""
        return self.khop(sources, None, **kwargs)

    def khop_stream(self, sources, k: int | None, **kwargs):
        """A stream of any number of queries, batched word-wide."""
        from repro.core.batch import run_query_stream

        return run_query_stream(self.pg, sources, k, session=self, **kwargs)

    def reach(self, sources, targets, k: int | None, **kwargs):
        """Pairwise s → t within-k reachability on the resident graph."""
        from repro.core.reachability import reachability_queries

        return reachability_queries(
            self.pg, sources, targets, k, session=self, **kwargs
        )

    def gas(self, program, iterations: int, **kwargs):
        """Run a GAS vertex program on the resident graph."""
        from repro.core.gas import run_gas

        return run_gas(self.pg, program, iterations, session=self, **kwargs)

    def pagerank(self, **kwargs):
        """Listing 3's PageRank on the resident graph."""
        from repro.core.pagerank import pagerank

        return pagerank(self.pg, session=self, **kwargs)

    def sssp(self, source: int, **kwargs):
        """Weighted single-source shortest paths on the resident graph."""
        from repro.core.sssp import sssp

        return sssp(self.pg, source, session=self, **kwargs)

    def multi_sssp(self, sources, **kwargs):
        """Concurrent weighted multi-query SSSP on the resident graph."""
        from repro.core.multi_sssp import concurrent_sssp

        return concurrent_sssp(self.pg, sources, session=self, **kwargs)

    def core_numbers(self, **kwargs):
        """Coreness on the cached undirected view of the resident graph."""
        from repro.core.kcore import core_numbers

        return core_numbers(self.pg, session=self, **kwargs)

    def khop_service_seconds(
        self, source: int, k: int | None, use_edge_sets: bool = False
    ) -> float:
        """Standalone virtual service time of one k-hop query, memoised.

        Service time is a deterministic function of ``(root, k)`` on the
        resident graph, so the response-time experiments re-cost repeated
        roots from this cache instead of re-traversing.
        """
        key = (int(source), k, use_edge_sets)
        cached = self._service_cache.get(key)
        if cached is None:
            res = self.khop([int(source)], k, use_edge_sets=use_edge_sets)
            cached = float(res.virtual_seconds)
            self._service_cache[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSession(n={self.num_vertices}, m={self.num_edges}, "
            f"machines={self.num_machines}, batches_run={self.batches_run})"
        )
