"""Concurrent-query admission and response-time accounting.

The paper's headline metric is the *response time of each query in a
concurrent environment* (§4.1).  Three execution disciplines appear in the
evaluation:

* **pool** — C-Graph's default: queries run concurrently on the cluster's
  worker pool (one slot per hardware-thread group); a query's response time
  is queueing delay + its own service time.  Titan is modelled the same way
  (it also serves queries concurrently), just with far larger service times.
* **serialized** — the Gemini comparison (Figures 8b, 13): "concurrently
  issued queries are serialized and a query's response time will be
  determined by any backlogged queries".  Equivalent to a pool of width 1.
* **batch** — bit-parallel mode (§3.5, Figure 13): queries are packed into
  word-wide batches that traverse together; a query completes when its own
  frontier dies (possibly earlier than its batch finishes the full k hops).

:func:`simulate_fifo_pool` is a deterministic multi-server FIFO queue
simulation; it converts per-query service times into response times for the
first two disciplines.  :func:`batch_response_times` maps batch-mode
completion times back to individual queries.

:class:`QueryService` is the *online* counterpart: an admission loop over a
persistent :class:`~repro.runtime.session.GraphSession`.  Queries are
submitted with arrival times, packed into word-wide batches (or dispatched
to pool slots) as they arrive, and executed for real on the resident graph —
per-query response times fall out of the engine's virtual clock instead of a
post-hoc service-time model.  The offline simulators above stay as
cross-checks: on identical workloads the two accountings agree.
"""

from __future__ import annotations

import heapq
import math
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidQueryError, MutationError, Overloaded
from repro.qos.lanes import (
    INTERACTIVE_LANE,
    QosConfig,
    TokenBucket,
    WeightedFairQueue,
)
from repro.qos.locality import affinity_select

__all__ = [
    "simulate_fifo_pool",
    "simulate_serialized",
    "batch_response_times",
    "QueryScheduler",
    "QueryService",
    "ServiceReport",
]


def simulate_fifo_pool(
    service_times,
    concurrency: int,
    arrival_times=None,
) -> np.ndarray:
    """Response times of queries run FIFO on ``concurrency`` worker slots.

    Queries are admitted in index order (ties in arrival time keep index
    order).  Returns ``finish - arrival`` per query.
    """
    service = np.asarray(service_times, dtype=np.float64)
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")
    n = service.size
    arrivals = (
        np.zeros(n) if arrival_times is None else np.asarray(arrival_times, float)
    )
    if arrivals.shape != service.shape:
        raise ValueError("arrival_times must match service_times")
    order = np.argsort(arrivals, kind="stable")
    free: list[float] = [0.0] * concurrency
    heapq.heapify(free)
    response = np.empty(n)
    for idx in order:
        slot = heapq.heappop(free)
        start = max(slot, arrivals[idx])
        finish = start + service[idx]
        heapq.heappush(free, finish)
        response[idx] = finish - arrivals[idx]
    return response


def simulate_serialized(service_times, arrival_times=None) -> np.ndarray:
    """Gemini-style serialisation: a width-1 pool (responses stack up)."""
    return simulate_fifo_pool(service_times, 1, arrival_times)


def batch_response_times(
    batch_start_times,
    per_query_batch: np.ndarray,
    per_query_offset_within_batch,
) -> np.ndarray:
    """Response times in bit-parallel batch mode.

    ``batch_start_times[b]`` is when batch ``b`` starts executing;
    ``per_query_offset_within_batch[q]`` is the virtual time *into its batch*
    at which query ``q``'s frontier died (its individual completion).
    """
    starts = np.asarray(batch_start_times, dtype=np.float64)
    batch_of = np.asarray(per_query_batch)
    offsets = np.asarray(per_query_offset_within_batch, dtype=np.float64)
    if batch_of.shape != offsets.shape:
        raise ValueError("per-query arrays must align")
    if batch_of.size and (batch_of.min() < 0 or batch_of.max() >= starts.size):
        raise ValueError("batch index out of range")
    return starts[batch_of] + offsets


@dataclass
class QueryScheduler:
    """Turns per-query service times into response times under a policy.

    ``concurrency`` approximates the cluster's usable query slots: the paper
    runs up to 350 concurrent queries on 9 × 44-core machines, but traversal
    work is memory-bound, so a slot count well below the core count is
    realistic.  The default (16 per machine) reproduces the paper's knee:
    up to ~100 queries respond fast; at 350 queueing dominates (Figure 12).
    """

    num_machines: int = 1
    slots_per_machine: int = 16

    @property
    def concurrency(self) -> int:
        return max(self.num_machines * self.slots_per_machine, 1)

    def pool(self, service_times, arrival_times=None) -> np.ndarray:
        """C-Graph / Titan discipline: concurrent FIFO pool."""
        return simulate_fifo_pool(service_times, self.concurrency, arrival_times)

    def serialized(self, service_times, arrival_times=None) -> np.ndarray:
        """Gemini discipline: one query at a time."""
        return simulate_serialized(service_times, arrival_times)


# --------------------------------------------------------------------------- #
# Online admission: the query service
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _PendingQuery:
    query_id: int
    source: int
    arrival: float
    target: int | None = None
    lane: str = INTERACTIVE_LANE
    tenant: str = "default"


def _str_array(values: list[str]) -> np.ndarray:
    """A numpy string array that stays well-typed when ``values`` is empty."""
    if not values:
        return np.empty(0, dtype="<U1")
    return np.array(values)


@dataclass
class ServiceReport:
    """Per-query accounting for one :meth:`QueryService.drain`.

    Arrays are aligned in submission order of the drained queries:
    ``response_seconds[i] = finish_seconds[i] - arrival_seconds[i]``.
    ``start_seconds[i]`` is when query ``i``'s batch (or pool slot) began
    executing, so ``start - arrival`` is its queueing delay.

    Point reachability queries additionally carry their ``targets`` (-1 for
    enumeration queries), their verdicts in ``reachable`` (1/0; -1 for
    enumeration queries, whose answer is a reach *set*, not a bit) and the
    execution strategy each query was routed to in ``routes``.
    """

    query_ids: np.ndarray
    sources: np.ndarray
    arrival_seconds: np.ndarray
    start_seconds: np.ndarray
    finish_seconds: np.ndarray
    num_batches: int
    clock_seconds: float
    targets: np.ndarray | None = None  # int64, -1 = no target
    reachable: np.ndarray | None = None  # int8, -1 = not a point query
    routes: np.ndarray | None = None  # "index" | "traversal" per query
    busy_seconds: float = 0.0  # virtual execution time this drain dispatched
    #: Per-query flag: its batch hit the service deadline before the query
    #: settled (its answer is the partial/best-effort one).  None when the
    #: service runs without a deadline.
    deadline_missed: np.ndarray | None = None
    #: True when the session served batches on the in-process fallback
    #: after losing its worker pool (see GraphSession degradation ladder).
    degraded: bool = False
    #: Submissions rejected by admission control since the last drain.
    shed: int = 0
    #: Per-query graph epoch its batch ran against (dynamic sessions only;
    #: None on a static session).  Every query of one dispatch shares one
    #: epoch — a batch never straddles a mutation.
    epochs: np.ndarray | None = None
    #: Queued mutation batches this drain applied (interleaved with query
    #: batches in arrival order; charged zero virtual time).
    mutations_applied: int = 0
    #: Per-query SLO lane / tenant (submission metadata; FIFO services
    #: default every query to the interactive lane and "default" tenant).
    lanes: np.ndarray | None = None
    tenants: np.ndarray | None = None
    #: Result-cache traffic this drain (hybrid planner with a ResultCache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Queries whose start was delayed by their tenant's token bucket.
    throttled: int = 0

    @property
    def response_seconds(self) -> np.ndarray:
        return self.finish_seconds - self.arrival_seconds

    @property
    def queueing_seconds(self) -> np.ndarray:
        return self.start_seconds - self.arrival_seconds

    @property
    def num_queries(self) -> int:
        return int(self.query_ids.size)

    @property
    def makespan(self) -> float:
        """Virtual seconds of execution this drain dispatched.

        In batch/traversal disciplines this is the sum of every dispatched
        batch's engine time — exactly the sum of the drain's per-superstep
        virtual-clock durations in an exported trace.  Idle time waiting
        for arrivals is excluded; in pool mode memoised service times are
        charged even when the engine run was cached.
        """
        return float(self.busy_seconds)

    # Empty drains (zero queries) are a legal steady-state of a long-lived
    # service; summary accessors return 0.0 instead of tripping numpy's
    # empty-slice warnings or reduce errors.
    @property
    def mean_response(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return float(self.response_seconds.mean())

    @property
    def max_response(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return float(self.response_seconds.max())

    def _lane_responses(self, lane: str | None) -> np.ndarray:
        if lane is None:
            return self.response_seconds
        if self.lanes is None:
            return np.empty(0)
        return self.response_seconds[self.lanes == lane]

    def lane_queries(self, lane: str) -> int:
        """How many drained queries ran on ``lane`` (0 for unknown lanes)."""
        return int(self._lane_responses(lane).size)

    def percentile(self, q: float, lane: str | None = None) -> float:
        """The ``q``-th response-time percentile, optionally for one lane.

        A lane that drained zero queries (or an unknown lane name) reports
        0.0 — never NaN — matching the empty-drain accessors above.
        """
        responses = self._lane_responses(lane)
        if responses.size == 0:
            return 0.0
        return float(np.percentile(responses, q))

    def p50(self, lane: str | None = None) -> float:
        """Median response time (seconds), optionally per lane."""
        return self.percentile(50.0, lane)

    def p95(self, lane: str | None = None) -> float:
        """95th-percentile response time (seconds), optionally per lane."""
        return self.percentile(95.0, lane)

    def p99(self, lane: str | None = None) -> float:
        """99th-percentile response time (seconds) — the tail the paper's
        concurrency figures are about.  ``p99(lane="interactive")`` is the
        per-SLO-class tail the QoS layer protects."""
        return self.percentile(99.0, lane)

    def __repr__(self) -> str:
        base = (
            f"ServiceReport(queries={self.num_queries}, "
            f"batches={self.num_batches}, "
            f"mean={self.mean_response:.6f}s, p99={self.p99():.6f}s, "
            f"makespan={self.makespan:.6f}s, clock={self.clock_seconds:.6f}s"
        )
        if self.lanes is not None and self.num_queries:
            names = sorted(set(self.lanes.tolist()))
            if len(names) > 1:
                per = ", ".join(
                    f"{name}: n={self.lane_queries(name)} "
                    f"p99={self.p99(lane=name):.6f}s"
                    for name in names
                )
                base += f", lanes=[{per}]"
        if self.cache_hits or self.cache_misses:
            base += f", cache={self.cache_hits}h/{self.cache_misses}m"
        return base + ")"


class QueryService:
    """An online k-hop query service over one persistent session.

    Arriving queries (``submit`` / ``submit_many``) queue until
    :meth:`drain` runs the admission loop:

    * ``discipline="batch"`` — the paper's bit-parallel mode.  At virtual
      time ``now = max(clock, earliest pending arrival)``, up to
      ``batch_width`` already-arrived queries are packed FIFO into one
      64-bit-plane batch and *executed for real* on the session; a query
      finishes at ``now`` plus its own in-batch completion offset (frontiers
      that die early respond early), and the clock advances by the batch's
      measured virtual seconds.
    * ``discipline="pool"`` — the multi-worker FIFO discipline.  Each query
      runs alone on the next free of ``concurrency`` slots, charged its
      standalone service time (memoised per root on the session).  This is
      by construction the same recurrence :func:`simulate_fifo_pool`
      computes, so the offline simulator cross-checks the service exactly.

    Queries submitted with a ``target`` are *point reachability* queries
    (is ``t`` within ``k`` hops of ``s``?).  The ``planner`` picks their
    execution strategy:

    * ``planner="traversal"`` (default) — point queries run on the
      bit-parallel reachability engine, packed FIFO into word-wide batches
      ahead of the enumeration queries;
    * ``planner="hybrid"`` — point queries route to the session's resident
      distance-label index (built on first use) on a dedicated lookup lane:
      no queueing behind traversal batches, each lookup charged its
      label-scan cost under the session's calibrated cost model.
      Enumeration queries (no target) always keep the traversal path —
      labels bound distances, they cannot enumerate reach sets.

    ``cross_check=True`` re-runs answers off the service's accounting
    books and raises on any mismatch — the bit-identical contract.  On a
    static session it requires the hybrid planner (index answers checked
    against the traversal engine); on a dynamic session (one whose
    :meth:`~repro.runtime.session.GraphSession.dynamic` layer is enabled)
    it additionally checks **every** dispatched batch against a
    rebuilt-from-scratch oracle graph at the batch's epoch — answers and
    virtual clocks both.

    **Mutation lane** — on a dynamic session, :meth:`apply_mutations`
    either applies an edge-mutation batch immediately or queues it with an
    arrival time; :meth:`drain` then interleaves due mutations with query
    batches: a mutation batch applies (advancing the graph epoch) before
    any query batch dispatched at or after its arrival, every query batch
    runs entirely against one epoch (recorded per query in
    ``ServiceReport.epochs``), and mutations are charged zero virtual time
    (ingestion is off the query clock).  The hybrid planner consults the
    index epoch before routing: point queries fall back to the traversal
    lane whenever the resident index is stale for the current epoch.

    **QoS drain** — passing a :class:`~repro.qos.lanes.QosConfig` replaces
    the FIFO drain order with deterministic weighted fair queueing over SLO
    lanes: every query carries a lane (``interactive`` / ``bulk`` / …) and a
    tenant, lanes are served in proportion to their weights, per-tenant
    token buckets pace heavy tenants on the virtual clock, and batches are
    packed with seed-partition affinity (queries whose seeds share a
    partition land in the same wide-BFS words).  Scheduling is policy only:
    per-query answers stay bit-identical to the FIFO drain (verdicts depend
    on the graph epoch, never on batch composition) and the whole report is
    a deterministic function of the submitted trace, so QoS reports
    reproduce bit-identically across reruns and backends.

    **Result cache** — passing a :class:`~repro.qos.cache.ResultCache`
    (hybrid planner only) fronts the index lane: repeated point-reach
    queries keyed ``(source, target, k, graph_epoch)`` are answered from a
    bounded LRU at one vertex-update of virtual cost (route ``"cache"``),
    and the mutation lane's epoch advance invalidates older entries so a
    stale verdict is unreachable by construction.  The cache's own
    ``cross_check`` mode re-executes every hit against the live planner.

    The virtual clock persists across drains — the session stays resident
    between waves of arrivals, which is the deployment model the paper
    evaluates (§4).
    """

    def __init__(
        self,
        session,
        k: int | None,
        discipline: str = "batch",
        batch_width: int = 64,
        concurrency: int | None = None,
        use_edge_sets: bool = False,
        planner: str = "traversal",
        cross_check: bool = False,
        instrumentation=None,
        deadline_seconds: float | None = None,
        max_pending: int | None = None,
        qos: QosConfig | None = None,
        cache=None,
    ):
        if discipline not in ("batch", "pool"):
            raise ValueError("discipline must be 'batch' or 'pool'")
        if not 1 <= batch_width <= 64:
            raise ValueError("batch_width must be in [1, 64]")
        if planner not in ("traversal", "hybrid"):
            raise ValueError("planner must be 'traversal' or 'hybrid'")
        if qos is not None and not isinstance(qos, QosConfig):
            raise TypeError("qos must be a repro.qos.QosConfig")
        if qos is not None and discipline != "batch":
            raise ValueError(
                "QoS lanes require discipline='batch' (weighted fair "
                "queueing schedules bit-parallel batches, not pool slots)"
            )
        if cache is not None and planner != "hybrid":
            raise ValueError(
                "the result cache fronts the index lane; it requires "
                "planner='hybrid'"
            )
        if (
            cross_check
            and planner != "hybrid"
            and not getattr(session, "is_dynamic", False)
        ):
            raise ValueError(
                "cross_check needs the hybrid planner or a dynamic session"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.session = session
        # the session's facade unless explicitly overridden, so one
        # Instrumentation covers engine, session and service spans
        if instrumentation is None:
            from repro.telemetry.instrument import NULL_INSTRUMENTATION

            instrumentation = getattr(session, "instr", NULL_INSTRUMENTATION)
        self.instr = instrumentation
        self.k = k
        self.discipline = discipline
        self.planner = planner
        self.cross_check = bool(cross_check)
        self.batch_width = int(batch_width)
        if concurrency is None:
            concurrency = QueryScheduler(session.num_machines).concurrency
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = int(concurrency)
        self.use_edge_sets = bool(use_edge_sets)
        #: Virtual-seconds budget per dispatched batch: a batch stops at the
        #: first superstep barrier past it and unresolved queries are
        #: reported with ``deadline_missed`` (graceful degradation, not an
        #: error).  Applies to traversal dispatches (batch/reach); the
        #: pool discipline charges memoised full service times.
        self.deadline_seconds = deadline_seconds
        #: Admission bound: submissions past this many pending queries are
        #: rejected with :class:`~repro.errors.Overloaded` (load shedding).
        self.max_pending = max_pending
        self.shed = 0
        self.deadline_misses = 0
        self.clock = 0.0
        self.batches_dispatched = 0
        self._dispatch_seq = 0  # span numbering (monotone across drains)
        self._next_id = 0
        self._pending: list[_PendingQuery] = []
        # pool-mode worker slots: next-free virtual time per slot
        self._slots: list[float] = [0.0] * self.concurrency
        heapq.heapify(self._slots)
        # the mutation lane (dynamic sessions)
        self.mutations_applied = 0
        self._mut_seq = 0
        self._pending_mutations: list[tuple] = []  # (arrival, seq, ins, dels)
        self._due_mutations: list[tuple] = []  # drain-local, arrival-sorted
        self._drain_mutations = 0
        self._oracle_sessions: dict[int, object] = {}  # epoch -> GraphSession
        # the QoS layer: WFQ lane state and per-tenant token buckets persist
        # across drains, like the virtual clock they run on
        self.qos = qos
        self._wfq = WeightedFairQueue(qos.lanes) if qos is not None else None
        self._buckets: dict[str, TokenBucket] = (
            {t: TokenBucket(spec) for t, spec in qos.quotas.items()}
            if qos is not None
            else {}
        )
        self.throttled = 0
        self._drain_throttled = 0
        # the result cache (hybrid planner): hit cost defaults to one
        # vertex-update under the session's calibrated cost model
        if cache is not None and cache.hit_seconds is None:
            from repro.runtime.netmodel import StepStats

            cache.hit_seconds = float(
                session.netmodel.compute_seconds(StepStats(vertices_updated=1))
            )
        self.cache = cache
        self._cache_mark = (0, 0)

    @classmethod
    def recover(cls, wal_dir, k: int | None, *, session_kwargs=None, **service_kwargs):
        """Stand a service back up from a crashed one's durable directory.

        Recovers the session (newest valid checkpoint + WAL-suffix replay,
        exact pre-crash epoch — see
        :func:`repro.runtime.durability.recover_session`, which
        ``session_kwargs`` is forwarded to) and wraps it in a fresh
        service built with ``service_kwargs``.  In-flight *queries* of the
        dead process are not replayed — they were never acknowledged;
        every acknowledged mutation is.
        """
        from repro.runtime.durability import recover_session

        session = recover_session(wal_dir, **(session_kwargs or {}))
        return cls(session, k, **service_kwargs)

    # -- submission --------------------------------------------------------- #

    def submit(
        self,
        source: int,
        arrival: float = 0.0,
        target: int | None = None,
        lane: str | None = None,
        tenant: str | None = None,
    ) -> int:
        """Queue one query; returns its id (submission order).

        With a ``target`` the query asks *is target within k hops of
        source* (a point reachability query, eligible for index routing);
        without one it asks for the full k-hop reach set.  ``lane`` picks
        the query's SLO class (defaults to the QoS config's default lane)
        and ``tenant`` its quota identity; both are recorded on the report
        even for FIFO services, where they are metadata only.

        Raises :class:`~repro.errors.Overloaded` when the service's
        ``max_pending`` admission bound is hit — shed load early rather
        than queueing without bound (callers can back off and resubmit).
        """
        if (
            self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            self.shed += 1
            self.instr.on_shed()
            raise Overloaded(
                f"query shed: {len(self._pending)} pending >= "
                f"max_pending={self.max_pending}"
            )
        if not 0 <= int(source) < self.session.num_vertices:
            raise InvalidQueryError("source vertex out of range")
        if target is not None and not 0 <= int(target) < self.session.num_vertices:
            raise InvalidQueryError("target vertex out of range")
        # NaN/inf arrivals would silently corrupt the virtual timeline (they
        # sort arbitrarily and poison every max/min the drain computes), so
        # they are rejected at the door alongside negative ones.
        arrival = float(arrival)
        if not math.isfinite(arrival) or arrival < 0:
            raise InvalidQueryError(
                f"arrival time must be finite and non-negative, got {arrival!r}"
            )
        if lane is None:
            lane = (
                self.qos.default_lane if self.qos is not None
                else INTERACTIVE_LANE
            )
        elif self.qos is not None and lane not in self.qos.lanes:
            raise InvalidQueryError(
                f"unknown lane {lane!r}; configured lanes: "
                f"{sorted(self.qos.lanes)}"
            )
        qid = self._next_id
        self._next_id += 1
        self._pending.append(
            _PendingQuery(
                qid,
                int(source),
                arrival,
                None if target is None else int(target),
                str(lane),
                "default" if tenant is None else str(tenant),
            )
        )
        return qid

    def submit_many(
        self, sources, arrivals=None, targets=None, lane=None, tenant=None
    ) -> list[int]:
        """Queue a wave of queries (``arrivals`` defaults to all-zero;
        ``targets``, when given, makes the wave point reachability queries;
        ``lane``/``tenant`` may be a single value for the whole wave or a
        per-query sequence matching ``sources``)."""
        sources = np.asarray(sources, dtype=np.int64)
        if arrivals is None:
            arrivals = np.zeros(sources.size)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.shape != sources.shape:
            raise ValueError("arrivals must match sources")
        lanes = self._broadcast_wave("lane", lane, sources.size)
        tenants = self._broadcast_wave("tenant", tenant, sources.size)
        if targets is None:
            return [
                self.submit(int(s), float(a), lane=ln, tenant=tn)
                for s, a, ln, tn in zip(sources, arrivals, lanes, tenants)
            ]
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape != sources.shape:
            raise ValueError("targets must match sources")
        return [
            self.submit(int(s), float(a), target=int(t), lane=ln, tenant=tn)
            for s, a, t, ln, tn in zip(sources, arrivals, targets, lanes, tenants)
        ]

    @staticmethod
    def _broadcast_wave(name, value, size):
        """A wave attribute is either one value for every query or a
        per-query sequence; normalise both to a length-``size`` list."""
        if value is None or isinstance(value, str):
            return [value] * size
        values = [None if v is None else str(v) for v in np.asarray(value).ravel()]
        if len(values) != size:
            raise ValueError(
                f"{name} must be a single value or match sources "
                f"(got {len(values)} for {size} queries)"
            )
        return values

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    # -- the mutation lane --------------------------------------------------- #

    def apply_mutations(self, inserts=(), deletes=(), arrival: float | None = None):
        """Apply (or queue) one edge-mutation batch on the dynamic session.

        Without ``arrival`` the batch applies immediately (between drains)
        and its :class:`~repro.dynamic.delta.MutationResult` is returned.
        With an ``arrival`` the batch queues and the next :meth:`drain`
        applies it — in arrival order, ties broken by submission order —
        before any query batch dispatched at or after that virtual time;
        ``None`` is returned.  Mutations are charged zero virtual time:
        ingestion runs off the query clock.
        """
        if not getattr(self.session, "is_dynamic", False):
            raise MutationError(
                "the service's session is static; enable session.dynamic() "
                "before applying mutations"
            )
        if arrival is None:
            res = self.session.apply_mutations(inserts, deletes)
            self.mutations_applied += 1
            return res
        arrival = float(arrival)
        if not math.isfinite(arrival) or arrival < 0:
            raise InvalidQueryError(
                f"arrival time must be finite and non-negative, got {arrival!r}"
            )
        seq = self._mut_seq
        self._mut_seq += 1
        self._pending_mutations.append((float(arrival), seq, inserts, deletes))
        return None

    @property
    def num_pending_mutations(self) -> int:
        return len(self._pending_mutations)

    def _apply_due_mutations(self, now: float) -> None:
        """Apply every queued mutation batch with ``arrival <= now``.

        On a durable session the whole due group commits under one fsync
        barrier (group commit): each batch still WAL-appends individually
        — ordering and torn-tail semantics are untouched — but the
        arrival-queued lane pays one sync per drain step, not per batch.
        """
        if not self._due_mutations or self._due_mutations[0][0] > now:
            return
        durability = getattr(self.session, "_durability", None)
        barrier = durability.group() if durability is not None else nullcontext()
        with barrier:
            while self._due_mutations and self._due_mutations[0][0] <= now:
                _, _, inserts, deletes = self._due_mutations.pop(0)
                self.session.apply_mutations(inserts, deletes)
                self.mutations_applied += 1
                self._drain_mutations += 1

    def _next_mutation_arrival(self) -> float | None:
        return self._due_mutations[0][0] if self._due_mutations else None

    def _epoch(self) -> int:
        return int(getattr(self.session, "graph_epoch", 0))

    # -- the admission loop ------------------------------------------------- #

    def drain(self) -> ServiceReport:
        """Run every pending query to completion; returns per-query times.

        Point reachability queries drain first (they are the latency-
        sensitive class the hybrid planner exists for), then enumeration
        queries run under the configured discipline.  On a dynamic session
        queued mutation batches interleave: each applies before the first
        query batch dispatched at or after its arrival, and any left over
        (arrivals past the last dispatch) apply at the end of the drain.
        """
        # arrival order, ties broken by submission order; arrays in the
        # tuples never get compared because seq is unique
        self._due_mutations = sorted(
            self._pending_mutations, key=lambda m: (m[0], m[1])
        )
        self._pending_mutations = []
        self._drain_mutations = 0
        self._drain_throttled = 0
        self._cache_mark = (
            (self.cache.hits, self.cache.misses)
            if self.cache is not None
            else (0, 0)
        )
        if not self._pending:
            self._apply_due_mutations(float("inf"))
            return self._report([], {}, {}, 0, {}, {}, 0.0, {}, {})
        # FIFO: by arrival time, ties broken by submission order
        queue = sorted(self._pending, key=lambda q: (q.arrival, q.query_id))
        self._pending = []
        starts: dict[int, float] = {}
        finishes: dict[int, float] = {}
        verdicts: dict[int, bool] = {}
        routes: dict[int, str] = {}
        missed: dict[int, bool] = {}
        epochs: dict[int, int] = {}
        num_dispatches = 0
        busy = 0.0
        point = [q for q in queue if q.target is not None]
        enum = [q for q in queue if q.target is None]
        with self.instr.span(
            "service drain", cat="service",
            queries=len(queue), discipline=self.discipline,
        ):
            if self.qos is not None:
                num_dispatches, busy = self._drain_qos(
                    queue, starts, finishes, verdicts, routes, missed, epochs
                )
            else:
                if point:
                    if self.planner == "hybrid":
                        n, t = self._drain_point_index(
                            point, starts, finishes, verdicts, routes, missed,
                            epochs,
                        )
                    else:
                        n, t = self._drain_point_traversal(
                            point, starts, finishes, verdicts, routes, missed,
                            epochs,
                        )
                    num_dispatches += n
                    busy += t
                if enum:
                    if self.discipline == "batch":
                        n, t = self._drain_batch(
                            enum, starts, finishes, missed, epochs
                        )
                    else:
                        n, t = self._drain_pool(enum, starts, finishes, epochs)
                    num_dispatches += n
                    busy += t
            self._apply_due_mutations(float("inf"))  # arrivals past the end
        self.batches_dispatched += num_dispatches
        if missed:
            self.deadline_misses += len(missed)
            self.instr.on_deadline_miss(len(missed))
        report = self._report(
            queue, starts, finishes, num_dispatches, verdicts, routes, busy,
            missed, epochs,
        )
        if self.instr.enabled:
            for route, resp in zip(report.routes, report.response_seconds):
                self.instr.on_query_done(
                    str(route), self.discipline, float(resp)
                )
            for lane, resp in zip(report.lanes, report.response_seconds):
                self.instr.on_lane_query(str(lane), float(resp))
            if self.cache is not None:
                self.instr.on_cache(
                    report.cache_hits, report.cache_misses, len(self.cache)
                )
            self.instr.on_clock(self.clock)
        return report

    # -- the QoS drain (weighted fair queueing over SLO lanes) --------------- #

    def _eligible_start(self, q: _PendingQuery) -> float:
        """Earliest virtual time ``q`` may start under its tenant's quota."""
        bucket = self._buckets.get(q.tenant)
        if bucket is None:
            return q.arrival
        return max(q.arrival, bucket.ready_time(q.arrival))

    def _take_token(self, q: _PendingQuery, now: float, eligible: float) -> None:
        """Consume ``q``'s quota token at dispatch; count a throttle when
        the quota (not the queue) delayed it past its arrival."""
        bucket = self._buckets.get(q.tenant)
        if bucket is None:
            return
        bucket.take(now)
        if eligible > q.arrival:
            self.throttled += 1
            self._drain_throttled += 1
            self.instr.on_throttle(q.tenant)

    def _drain_qos(
        self, queue, starts, finishes, verdicts, routes, missed, epochs
    ) -> tuple[int, float]:
        """Weighted-fair drain: the QoS replacement for the FIFO loop.

        Hybrid-planned point queries still leave through the dedicated
        index lane first (paced by their tenants' buckets but exempt from
        WFQ — lookups never queue behind traversal batches).  Everything
        else runs through an event loop: at each step the earliest
        quota-eligible virtual instant defines the candidate set, the WFQ
        picks which backlogged lane to serve, and a batch of that lane's
        queries — packed by seed-partition affinity — dispatches on the
        engine.  The lane is then charged the batch's measured virtual
        seconds normalised by its weight.  Every input that drives a
        decision (arrivals, quotas, weights, seed owners) is part of the
        submitted trace, so the drain is deterministic end to end.
        """
        from repro.core.khop import concurrent_khop

        qos = self.qos
        num = 0
        busy = 0.0
        remaining = list(queue)
        if self.planner == "hybrid":
            point = [q for q in remaining if q.target is not None]
            if point:
                n, t = self._drain_point_index(
                    point, starts, finishes, verdicts, routes, missed, epochs
                )
                num += n
                busy += t
                remaining = [q for q in remaining if q.target is None]
        while remaining:
            eligible = {q.query_id: self._eligible_start(q) for q in remaining}
            now = max(self.clock, min(eligible.values()))
            ready = [q for q in remaining if eligible[q.query_id] <= now]
            lane = self._wfq.pick(sorted({q.lane for q in ready}))
            lane_ready = [q for q in ready if q.lane == lane]
            is_point = lane_ready[0].target is not None
            kind_ready = [
                q for q in lane_ready if (q.target is not None) == is_point
            ]
            # per-batch quota budget: a tenant contributes at most its
            # current token balance to one batch (floor 1, so every tenant
            # keeps making progress — overdraft pushes its next eligibility
            # out instead of deadlocking the lane)
            if self._buckets:
                budgets: dict[str, int] = {}
                admitted = []
                for q in kind_ready:
                    bucket = self._buckets.get(q.tenant)
                    if bucket is None:
                        admitted.append(q)
                        continue
                    if q.tenant not in budgets:
                        bucket._refill(now)
                        budgets[q.tenant] = max(1, int(bucket.tokens))
                    if budgets[q.tenant] > 0:
                        budgets[q.tenant] -= 1
                        admitted.append(q)
                kind_ready = admitted
            spec = qos.lanes[lane]
            width = min(self.batch_width, spec.batch_width or self.batch_width)
            if qos.affinity == "partition" and len(kind_ready) > width:
                owners = self.session.seed_owners(
                    [q.source for q in kind_ready]
                )
                batch = [kind_ready[i] for i in affinity_select(owners, width)]
            else:
                batch = kind_ready[:width]
            self._apply_due_mutations(now)
            epoch = self._epoch()
            if is_point:
                res = self._dispatch(
                    "reach", now, len(batch),
                    lambda: self.session.reach(
                        [q.source for q in batch],
                        [q.target for q in batch],
                        self.k,
                        use_edge_sets=self.use_edge_sets,
                        max_virtual_seconds=self.deadline_seconds,
                    ),
                )
                per_query = res.resolution_seconds
                for j, q in enumerate(batch):
                    verdicts[q.query_id] = bool(res.reachable[j])
                    routes[q.query_id] = "traversal"
            else:
                res = self._dispatch(
                    "khop", now, len(batch),
                    lambda: concurrent_khop(
                        self.session.pg,
                        [q.source for q in batch],
                        self.k,
                        use_edge_sets=self.use_edge_sets,
                        session=self.session,
                        max_virtual_seconds=self.deadline_seconds,
                    ),
                )
                per_query = res.completion_seconds
            for j, q in enumerate(batch):
                starts[q.query_id] = now
                epochs[q.query_id] = epoch
                if res.resolved is None or res.resolved[j]:
                    finishes[q.query_id] = now + float(per_query[j])
                else:
                    finishes[q.query_id] = now + float(res.virtual_seconds)
                    missed[q.query_id] = True
                self._take_token(q, now, eligible[q.query_id])
            self.clock = now + float(res.virtual_seconds)
            busy += float(res.virtual_seconds)
            num += 1
            self._wfq.charge(lane, float(res.virtual_seconds))
            if self.cross_check and getattr(self.session, "is_dynamic", False):
                if is_point:
                    self._oracle_check_reach(batch, res, epoch)
                else:
                    self._oracle_check_khop(batch, res, epoch)
            dispatched = {q.query_id for q in batch}
            remaining = [q for q in remaining if q.query_id not in dispatched]
        return num, busy

    def _drain_point_index(
        self, queue, starts, finishes, verdicts, routes, missed, epochs
    ) -> tuple[int, float]:
        """Answer point queries from the resident index (hybrid planner).

        The index is a dedicated lookup lane: a query starts the moment it
        arrives (no queueing behind traversal batches) and pays its
        label-scan cost under the session's cost model.  The service clock
        is only raised to cover the latest lookup, never rewound.

        On a dynamic session the lane is split at pending-mutation
        arrivals: each group applies its due mutations first, then consults
        the index epoch — a resident index stale for the current graph
        epoch routes the group to the traversal lane instead of serving
        wrong answers cheaply.
        """
        num = 0
        busy = 0.0
        i = 0
        while i < len(queue):
            self._apply_due_mutations(queue[i].arrival)
            next_mut = self._next_mutation_arrival()
            group = [queue[i]]
            i += 1
            while i < len(queue) and (
                next_mut is None or queue[i].arrival < next_mut
            ):
                group.append(queue[i])
                i += 1
            stale = (
                getattr(self.session, "is_dynamic", False)
                and self.session.has_index
                and not self.session.index_is_current
            )
            if stale:
                n, t = self._drain_point_traversal(
                    group, starts, finishes, verdicts, routes, missed, epochs
                )
            else:
                n, t = self._index_group(
                    group, starts, finishes, verdicts, routes, epochs
                )
            num += n
            busy += t
        return num, busy

    def _index_group(
        self, queue, starts, finishes, verdicts, routes, epochs
    ) -> tuple[int, float]:
        """Serve one index-lane group, fronted by the result cache.

        With a :class:`~repro.qos.cache.ResultCache` wired in, each query
        first probes the cache at the group's graph epoch (older entries
        were invalidated when the epoch advanced); hits are charged the
        one-vertex-update hit cost and routed ``"cache"``, misses go to the
        resident index as before and populate the cache on the way out.
        """
        planner = self.session.index_planner()  # builds the index once
        epoch = self._epoch()
        cache = self.cache
        sources = np.array([q.source for q in queue], dtype=np.int64)
        targets = np.array([q.target for q in queue], dtype=np.int64)
        if cache is not None:
            group_verdicts, service, hit_mask = planner.answer_cached(
                sources, targets, self.k, epoch, cache
            )
        else:
            answer = planner.answer(sources, targets, self.k)
            group_verdicts = answer.reachable
            service = answer.service_seconds
            hit_mask = np.zeros(len(queue), dtype=bool)
        busy = float(service.sum())
        for j, q in enumerate(queue):
            start = q.arrival
            if self.qos is not None:
                eligible = self._eligible_start(q)
                start = max(start, eligible)
                self._take_token(q, start, eligible)
            starts[q.query_id] = start
            finishes[q.query_id] = start + float(service[j])
            verdicts[q.query_id] = bool(group_verdicts[j])
            routes[q.query_id] = "cache" if hit_mask[j] else "index"
            epochs[q.query_id] = epoch
        self.clock = max(self.clock, max(finishes[q.query_id] for q in queue))
        if self.instr.enabled:
            self.instr.tracer.record(
                "index lane",
                cat="index",
                virt_start=min(starts[q.query_id] for q in queue),
                virt_end=max(finishes[q.query_id] for q in queue),
                queries=len(queue),
            )
            self.instr.on_dispatch("index")
        if cache is not None and cache.cross_check and hit_mask.any():
            hit = np.nonzero(hit_mask)[0]
            ref = planner.answer(sources[hit], targets[hit], self.k)
            if not np.array_equal(ref.reachable, group_verdicts[hit]):
                bad = np.nonzero(ref.reachable != group_verdicts[hit])[0][0]
                s, t = int(sources[hit][bad]), int(targets[hit][bad])
                raise AssertionError(
                    f"stale cache verdict for ({s} -> {t}, k={self.k}, "
                    f"epoch {epoch}): cache says "
                    f"{bool(group_verdicts[hit][bad])}, live planner says "
                    f"{bool(ref.reachable[bad])}"
                )
        if self.cross_check:
            if getattr(self.session, "is_dynamic", False):
                self._assert_matches_oracle_index(
                    sources, targets, group_verdicts, epoch
                )
            else:
                self._assert_matches_traversal(
                    sources, targets, group_verdicts
                )
        return len(queue), busy

    def _drain_point_traversal(
        self, queue, starts, finishes, verdicts, routes, missed, epochs
    ) -> tuple[int, float]:
        """Point queries on the bit-parallel reachability engine (word-wide
        FIFO batches with per-query early termination)."""
        num_batches = 0
        busy = 0.0
        i = 0
        while i < len(queue):
            now = max(self.clock, queue[i].arrival)
            self._apply_due_mutations(now)
            epoch = self._epoch()
            batch = [queue[i]]
            i += 1
            while (
                i < len(queue)
                and len(batch) < self.batch_width
                and queue[i].arrival <= now
            ):
                batch.append(queue[i])
                i += 1
            res = self._dispatch(
                "reach", now, len(batch),
                lambda: self.session.reach(
                    [q.source for q in batch],
                    [q.target for q in batch],
                    self.k,
                    use_edge_sets=self.use_edge_sets,
                    max_virtual_seconds=self.deadline_seconds,
                ),
            )
            for j, q in enumerate(batch):
                starts[q.query_id] = now
                verdicts[q.query_id] = bool(res.reachable[j])
                routes[q.query_id] = "traversal"
                epochs[q.query_id] = epoch
                if res.resolved is None or res.resolved[j]:
                    finishes[q.query_id] = now + float(res.resolution_seconds[j])
                else:
                    finishes[q.query_id] = now + float(res.virtual_seconds)
                    missed[q.query_id] = True
            self.clock = now + float(res.virtual_seconds)
            busy += float(res.virtual_seconds)
            num_batches += 1
            if self.cross_check and getattr(self.session, "is_dynamic", False):
                self._oracle_check_reach(batch, res, epoch)
        return num_batches, busy

    def _assert_matches_traversal(self, sources, targets, index_verdicts):
        """Cross-check mode: index answers must be bit-identical to the
        traversal engine's.  Runs off the service's accounting books."""
        for i in range(0, sources.size, 64):
            chunk = slice(i, min(i + 64, sources.size))
            res = self.session.reach(sources[chunk], targets[chunk], self.k)
            if not np.array_equal(res.reachable, index_verdicts[chunk]):
                bad = np.nonzero(res.reachable != index_verdicts[chunk])[0][0]
                s, t = int(sources[chunk][bad]), int(targets[chunk][bad])
                raise AssertionError(
                    f"index/traversal cross-check failed for "
                    f"({s} -> {t}, k={self.k}): index says "
                    f"{bool(index_verdicts[chunk][bad])}, traversal says "
                    f"{bool(res.reachable[bad])}"
                )

    def _dispatch(self, kind: str, now: float, width: int, run):
        """Execute one batch dispatch, placing it on the virtual timeline.

        With instrumentation on, the tracer's virtual cursor jumps to the
        dispatch's admission time first (covering idle gaps between
        arrivals), so engine superstep spans land where the service clock
        says the batch ran.
        """
        instr = self.instr
        if not instr.enabled:
            return run()
        instr.tracer.virtual_now = now
        instr.on_dispatch(self.discipline)
        seq = self._dispatch_seq
        self._dispatch_seq += 1
        with instr.span(
            f"dispatch {kind} b{seq}",
            cat="dispatch", width=width, discipline=self.discipline,
        ):
            return run()

    def _drain_batch(
        self, queue, starts, finishes, missed, epochs
    ) -> tuple[int, float]:
        from repro.core.khop import concurrent_khop

        num_batches = 0
        busy = 0.0
        i = 0
        while i < len(queue):
            now = max(self.clock, queue[i].arrival)
            self._apply_due_mutations(now)
            epoch = self._epoch()
            batch = [queue[i]]
            i += 1
            while (
                i < len(queue)
                and len(batch) < self.batch_width
                and queue[i].arrival <= now
            ):
                batch.append(queue[i])
                i += 1
            res = self._dispatch(
                "khop", now, len(batch),
                lambda: concurrent_khop(
                    self.session.pg,
                    [q.source for q in batch],
                    self.k,
                    use_edge_sets=self.use_edge_sets,
                    session=self.session,
                    max_virtual_seconds=self.deadline_seconds,
                ),
            )
            for j, q in enumerate(batch):
                starts[q.query_id] = now
                epochs[q.query_id] = epoch
                if res.resolved is None or res.resolved[j]:
                    finishes[q.query_id] = now + float(res.completion_seconds[j])
                else:
                    finishes[q.query_id] = now + float(res.virtual_seconds)
                    missed[q.query_id] = True
            self.clock = now + float(res.virtual_seconds)
            busy += float(res.virtual_seconds)
            num_batches += 1
            if self.cross_check and getattr(self.session, "is_dynamic", False):
                self._oracle_check_khop(batch, res, epoch)
        return num_batches, busy

    def _drain_pool(self, queue, starts, finishes, epochs) -> tuple[int, float]:
        busy = 0.0
        dynamic = getattr(self.session, "is_dynamic", False)
        for q in queue:
            slot = heapq.heappop(self._slots)
            start = max(slot, q.arrival)
            self._apply_due_mutations(start)
            epoch = self._epoch()
            service = self.session.khop_service_seconds(
                q.source, self.k, use_edge_sets=self.use_edge_sets
            )
            finish = start + service
            heapq.heappush(self._slots, finish)
            starts[q.query_id] = start
            finishes[q.query_id] = finish
            epochs[q.query_id] = epoch
            busy += service
            if self.cross_check and dynamic:
                ref = self._oracle_session(epoch).khop_service_seconds(
                    q.source, self.k, use_edge_sets=self.use_edge_sets
                )
                if ref != service:
                    raise AssertionError(
                        f"dynamic cross-check failed for pool query "
                        f"(source {q.source}, k={self.k}, epoch {epoch}): "
                        f"live service time {service!r} != oracle {ref!r}"
                    )
        self.clock = max(self.clock, max(finishes[q.query_id] for q in queue))
        return len(queue), busy

    # -- the rebuilt-from-scratch oracle (dynamic cross-check mode) ---------- #

    _ORACLE_CACHE_CAP = 4

    def _oracle_session(self, epoch: int):
        """An in-process session over the snapshot store's from-scratch
        partitioning of ``epoch``, sharing the live session's cost model.
        Small LRU-ish cache: drains revisit at most a few recent epochs."""
        sess = self._oracle_sessions.get(epoch)
        if sess is None:
            from repro.runtime.session import GraphSession

            graph = self.session.snapshots().graph_at(epoch)
            sess = GraphSession(graph, netmodel=self.session.netmodel)
            while len(self._oracle_sessions) >= self._ORACLE_CACHE_CAP:
                self._oracle_sessions.pop(next(iter(self._oracle_sessions)))
            self._oracle_sessions[epoch] = sess
        return sess

    def _oracle_check_khop(self, batch, res, epoch: int) -> None:
        """The mutated graph's answers must be bit-identical — counts,
        per-query completions AND the batch's virtual clock — to a session
        rebuilt from scratch at the same epoch.  Off the accounting books."""
        from repro.core.khop import concurrent_khop

        oracle = self._oracle_session(epoch)
        ref = concurrent_khop(
            oracle.pg,
            [q.source for q in batch],
            self.k,
            use_edge_sets=self.use_edge_sets,
            session=oracle,
            max_virtual_seconds=self.deadline_seconds,
        )
        if (
            not np.array_equal(res.reached, ref.reached)
            or not np.array_equal(res.completion_seconds, ref.completion_seconds)
            or res.virtual_seconds != ref.virtual_seconds
        ):
            raise AssertionError(
                f"dynamic cross-check failed for k-hop batch at epoch "
                f"{epoch}: live (reached={res.reached}, "
                f"virt={res.virtual_seconds!r}) != oracle "
                f"(reached={ref.reached}, virt={ref.virtual_seconds!r})"
            )

    def _oracle_check_reach(self, batch, res, epoch: int) -> None:
        oracle = self._oracle_session(epoch)
        ref = oracle.reach(
            [q.source for q in batch],
            [q.target for q in batch],
            self.k,
            use_edge_sets=self.use_edge_sets,
            max_virtual_seconds=self.deadline_seconds,
        )
        if (
            not np.array_equal(res.reachable, ref.reachable)
            or not np.array_equal(res.resolution_seconds, ref.resolution_seconds)
            or res.virtual_seconds != ref.virtual_seconds
        ):
            raise AssertionError(
                f"dynamic cross-check failed for reachability batch at "
                f"epoch {epoch}: live (reachable={res.reachable}, "
                f"virt={res.virtual_seconds!r}) != oracle "
                f"(reachable={ref.reachable}, virt={ref.virtual_seconds!r})"
            )

    def _assert_matches_oracle_index(
        self, sources, targets, index_verdicts, epoch: int
    ) -> None:
        """Index-lane verdicts on a dynamic session must match traversal on
        the from-scratch oracle graph at the same epoch."""
        oracle = self._oracle_session(epoch)
        for i in range(0, sources.size, 64):
            chunk = slice(i, min(i + 64, sources.size))
            ref = oracle.reach(sources[chunk], targets[chunk], self.k)
            if not np.array_equal(ref.reachable, index_verdicts[chunk]):
                bad = np.nonzero(ref.reachable != index_verdicts[chunk])[0][0]
                s, t = int(sources[chunk][bad]), int(targets[chunk][bad])
                raise AssertionError(
                    f"dynamic cross-check failed for ({s} -> {t}, "
                    f"k={self.k}, epoch {epoch}): index says "
                    f"{bool(index_verdicts[chunk][bad])}, oracle traversal "
                    f"says {bool(ref.reachable[bad])}"
                )

    def _report(
        self, queue, starts, finishes, num_batches, verdicts=None, routes=None,
        busy_seconds: float = 0.0, missed=None, epochs=None,
    ) -> ServiceReport:
        by_id = sorted(queue, key=lambda q: q.query_id)
        verdicts = verdicts or {}
        routes = routes or {}
        missed = missed or {}
        epochs = epochs or {}
        shed, self.shed = self.shed, 0
        drain_mutations, self._drain_mutations = self._drain_mutations, 0
        drain_throttled, self._drain_throttled = self._drain_throttled, 0
        if self.cache is not None:
            cache_hits = self.cache.hits - self._cache_mark[0]
            cache_misses = self.cache.misses - self._cache_mark[1]
        else:
            cache_hits = cache_misses = 0
        ids = np.array([q.query_id for q in by_id], dtype=np.int64)
        return ServiceReport(
            query_ids=ids,
            sources=np.array([q.source for q in by_id], dtype=np.int64),
            arrival_seconds=np.array([q.arrival for q in by_id]),
            start_seconds=np.array([starts[q.query_id] for q in by_id]),
            finish_seconds=np.array([finishes[q.query_id] for q in by_id]),
            num_batches=num_batches,
            clock_seconds=self.clock,
            targets=np.array(
                [-1 if q.target is None else q.target for q in by_id],
                dtype=np.int64,
            ),
            reachable=np.array(
                [int(verdicts.get(q.query_id, -1)) for q in by_id],
                dtype=np.int8,
            ),
            routes=np.array(
                [routes.get(q.query_id, "traversal") for q in by_id],
                dtype="<U9",
            ),
            busy_seconds=float(busy_seconds),
            deadline_missed=(
                None
                if self.deadline_seconds is None
                else np.array(
                    [bool(missed.get(q.query_id, False)) for q in by_id]
                )
            ),
            degraded=bool(getattr(self.session, "degraded", False)),
            shed=shed,
            epochs=(
                np.array(
                    [epochs.get(q.query_id, -1) for q in by_id], dtype=np.int64
                )
                if getattr(self.session, "is_dynamic", False)
                else None
            ),
            mutations_applied=drain_mutations,
            lanes=_str_array([q.lane for q in by_id]),
            tenants=_str_array([q.tenant for q in by_id]),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            throttled=drain_throttled,
        )
