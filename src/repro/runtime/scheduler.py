"""Concurrent-query admission and response-time accounting.

The paper's headline metric is the *response time of each query in a
concurrent environment* (§4.1).  Three execution disciplines appear in the
evaluation:

* **pool** — C-Graph's default: queries run concurrently on the cluster's
  worker pool (one slot per hardware-thread group); a query's response time
  is queueing delay + its own service time.  Titan is modelled the same way
  (it also serves queries concurrently), just with far larger service times.
* **serialized** — the Gemini comparison (Figures 8b, 13): "concurrently
  issued queries are serialized and a query's response time will be
  determined by any backlogged queries".  Equivalent to a pool of width 1.
* **batch** — bit-parallel mode (§3.5, Figure 13): queries are packed into
  word-wide batches that traverse together; a query completes when its own
  frontier dies (possibly earlier than its batch finishes the full k hops).

:func:`simulate_fifo_pool` is a deterministic multi-server FIFO queue
simulation; it converts per-query service times into response times for the
first two disciplines.  :func:`batch_response_times` maps batch-mode
completion times back to individual queries.

:class:`QueryService` is the *online* counterpart: an admission loop over a
persistent :class:`~repro.runtime.session.GraphSession`.  Queries are
submitted with arrival times, packed into word-wide batches (or dispatched
to pool slots) as they arrive, and executed for real on the resident graph —
per-query response times fall out of the engine's virtual clock instead of a
post-hoc service-time model.  The offline simulators above stay as
cross-checks: on identical workloads the two accountings agree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "simulate_fifo_pool",
    "simulate_serialized",
    "batch_response_times",
    "QueryScheduler",
    "QueryService",
    "ServiceReport",
]


def simulate_fifo_pool(
    service_times,
    concurrency: int,
    arrival_times=None,
) -> np.ndarray:
    """Response times of queries run FIFO on ``concurrency`` worker slots.

    Queries are admitted in index order (ties in arrival time keep index
    order).  Returns ``finish - arrival`` per query.
    """
    service = np.asarray(service_times, dtype=np.float64)
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")
    n = service.size
    arrivals = (
        np.zeros(n) if arrival_times is None else np.asarray(arrival_times, float)
    )
    if arrivals.shape != service.shape:
        raise ValueError("arrival_times must match service_times")
    order = np.argsort(arrivals, kind="stable")
    free: list[float] = [0.0] * concurrency
    heapq.heapify(free)
    response = np.empty(n)
    for idx in order:
        slot = heapq.heappop(free)
        start = max(slot, arrivals[idx])
        finish = start + service[idx]
        heapq.heappush(free, finish)
        response[idx] = finish - arrivals[idx]
    return response


def simulate_serialized(service_times, arrival_times=None) -> np.ndarray:
    """Gemini-style serialisation: a width-1 pool (responses stack up)."""
    return simulate_fifo_pool(service_times, 1, arrival_times)


def batch_response_times(
    batch_start_times,
    per_query_batch: np.ndarray,
    per_query_offset_within_batch,
) -> np.ndarray:
    """Response times in bit-parallel batch mode.

    ``batch_start_times[b]`` is when batch ``b`` starts executing;
    ``per_query_offset_within_batch[q]`` is the virtual time *into its batch*
    at which query ``q``'s frontier died (its individual completion).
    """
    starts = np.asarray(batch_start_times, dtype=np.float64)
    batch_of = np.asarray(per_query_batch)
    offsets = np.asarray(per_query_offset_within_batch, dtype=np.float64)
    if batch_of.shape != offsets.shape:
        raise ValueError("per-query arrays must align")
    if batch_of.size and (batch_of.min() < 0 or batch_of.max() >= starts.size):
        raise ValueError("batch index out of range")
    return starts[batch_of] + offsets


@dataclass
class QueryScheduler:
    """Turns per-query service times into response times under a policy.

    ``concurrency`` approximates the cluster's usable query slots: the paper
    runs up to 350 concurrent queries on 9 × 44-core machines, but traversal
    work is memory-bound, so a slot count well below the core count is
    realistic.  The default (16 per machine) reproduces the paper's knee:
    up to ~100 queries respond fast; at 350 queueing dominates (Figure 12).
    """

    num_machines: int = 1
    slots_per_machine: int = 16

    @property
    def concurrency(self) -> int:
        return max(self.num_machines * self.slots_per_machine, 1)

    def pool(self, service_times, arrival_times=None) -> np.ndarray:
        """C-Graph / Titan discipline: concurrent FIFO pool."""
        return simulate_fifo_pool(service_times, self.concurrency, arrival_times)

    def serialized(self, service_times, arrival_times=None) -> np.ndarray:
        """Gemini discipline: one query at a time."""
        return simulate_serialized(service_times, arrival_times)


# --------------------------------------------------------------------------- #
# Online admission: the query service
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _PendingQuery:
    query_id: int
    source: int
    arrival: float


@dataclass
class ServiceReport:
    """Per-query accounting for one :meth:`QueryService.drain`.

    Arrays are aligned in submission order of the drained queries:
    ``response_seconds[i] = finish_seconds[i] - arrival_seconds[i]``.
    ``start_seconds[i]`` is when query ``i``'s batch (or pool slot) began
    executing, so ``start - arrival`` is its queueing delay.
    """

    query_ids: np.ndarray
    sources: np.ndarray
    arrival_seconds: np.ndarray
    start_seconds: np.ndarray
    finish_seconds: np.ndarray
    num_batches: int
    clock_seconds: float

    @property
    def response_seconds(self) -> np.ndarray:
        return self.finish_seconds - self.arrival_seconds

    @property
    def queueing_seconds(self) -> np.ndarray:
        return self.start_seconds - self.arrival_seconds

    @property
    def num_queries(self) -> int:
        return int(self.query_ids.size)

    @property
    def mean_response(self) -> float:
        return float(self.response_seconds.mean())

    @property
    def max_response(self) -> float:
        return float(self.response_seconds.max())


class QueryService:
    """An online k-hop query service over one persistent session.

    Arriving queries (``submit`` / ``submit_many``) queue until
    :meth:`drain` runs the admission loop:

    * ``discipline="batch"`` — the paper's bit-parallel mode.  At virtual
      time ``now = max(clock, earliest pending arrival)``, up to
      ``batch_width`` already-arrived queries are packed FIFO into one
      64-bit-plane batch and *executed for real* on the session; a query
      finishes at ``now`` plus its own in-batch completion offset (frontiers
      that die early respond early), and the clock advances by the batch's
      measured virtual seconds.
    * ``discipline="pool"`` — the multi-worker FIFO discipline.  Each query
      runs alone on the next free of ``concurrency`` slots, charged its
      standalone service time (memoised per root on the session).  This is
      by construction the same recurrence :func:`simulate_fifo_pool`
      computes, so the offline simulator cross-checks the service exactly.

    The virtual clock persists across drains — the session stays resident
    between waves of arrivals, which is the deployment model the paper
    evaluates (§4).
    """

    def __init__(
        self,
        session,
        k: int | None,
        discipline: str = "batch",
        batch_width: int = 64,
        concurrency: int | None = None,
        use_edge_sets: bool = False,
    ):
        if discipline not in ("batch", "pool"):
            raise ValueError("discipline must be 'batch' or 'pool'")
        if not 1 <= batch_width <= 64:
            raise ValueError("batch_width must be in [1, 64]")
        self.session = session
        self.k = k
        self.discipline = discipline
        self.batch_width = int(batch_width)
        if concurrency is None:
            concurrency = QueryScheduler(session.num_machines).concurrency
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = int(concurrency)
        self.use_edge_sets = bool(use_edge_sets)
        self.clock = 0.0
        self.batches_dispatched = 0
        self._next_id = 0
        self._pending: list[_PendingQuery] = []
        # pool-mode worker slots: next-free virtual time per slot
        self._slots: list[float] = [0.0] * self.concurrency
        heapq.heapify(self._slots)

    # -- submission --------------------------------------------------------- #

    def submit(self, source: int, arrival: float = 0.0) -> int:
        """Queue one query; returns its id (submission order)."""
        if not 0 <= int(source) < self.session.num_vertices:
            raise ValueError("source vertex out of range")
        if arrival < 0:
            raise ValueError("arrival time must be non-negative")
        qid = self._next_id
        self._next_id += 1
        self._pending.append(_PendingQuery(qid, int(source), float(arrival)))
        return qid

    def submit_many(self, sources, arrivals=None) -> list[int]:
        """Queue a wave of queries (``arrivals`` defaults to all-zero)."""
        sources = np.asarray(sources, dtype=np.int64)
        if arrivals is None:
            arrivals = np.zeros(sources.size)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.shape != sources.shape:
            raise ValueError("arrivals must match sources")
        return [
            self.submit(int(s), float(a)) for s, a in zip(sources, arrivals)
        ]

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    # -- the admission loop ------------------------------------------------- #

    def drain(self) -> ServiceReport:
        """Run every pending query to completion; returns per-query times."""
        if not self._pending:
            return self._report([], [], [], 0)
        # FIFO: by arrival time, ties broken by submission order
        queue = sorted(self._pending, key=lambda q: (q.arrival, q.query_id))
        self._pending = []
        if self.discipline == "batch":
            return self._drain_batch(queue)
        return self._drain_pool(queue)

    def _drain_batch(self, queue: list[_PendingQuery]) -> ServiceReport:
        from repro.core.khop import concurrent_khop

        starts: dict[int, float] = {}
        finishes: dict[int, float] = {}
        num_batches = 0
        i = 0
        while i < len(queue):
            now = max(self.clock, queue[i].arrival)
            batch = [queue[i]]
            i += 1
            while (
                i < len(queue)
                and len(batch) < self.batch_width
                and queue[i].arrival <= now
            ):
                batch.append(queue[i])
                i += 1
            res = concurrent_khop(
                self.session.pg,
                [q.source for q in batch],
                self.k,
                use_edge_sets=self.use_edge_sets,
                session=self.session,
            )
            for j, q in enumerate(batch):
                starts[q.query_id] = now
                finishes[q.query_id] = now + float(res.completion_seconds[j])
            self.clock = now + float(res.virtual_seconds)
            num_batches += 1
        self.batches_dispatched += num_batches
        return self._report(queue, starts, finishes, num_batches)

    def _drain_pool(self, queue: list[_PendingQuery]) -> ServiceReport:
        starts: dict[int, float] = {}
        finishes: dict[int, float] = {}
        for q in queue:
            slot = heapq.heappop(self._slots)
            start = max(slot, q.arrival)
            service = self.session.khop_service_seconds(
                q.source, self.k, use_edge_sets=self.use_edge_sets
            )
            finish = start + service
            heapq.heappush(self._slots, finish)
            starts[q.query_id] = start
            finishes[q.query_id] = finish
        self.batches_dispatched += len(queue)
        self.clock = max(self.clock, max(finishes.values()))
        return self._report(queue, starts, finishes, len(queue))

    def _report(self, queue, starts, finishes, num_batches) -> ServiceReport:
        by_id = sorted(queue, key=lambda q: q.query_id)
        ids = np.array([q.query_id for q in by_id], dtype=np.int64)
        return ServiceReport(
            query_ids=ids,
            sources=np.array([q.source for q in by_id], dtype=np.int64),
            arrival_seconds=np.array([q.arrival for q in by_id]),
            start_seconds=np.array([starts[q.query_id] for q in by_id]),
            finish_seconds=np.array([finishes[q.query_id] for q in by_id]),
            num_batches=num_batches,
            clock_seconds=self.clock,
        )
