"""Concurrent-query admission and response-time accounting.

The paper's headline metric is the *response time of each query in a
concurrent environment* (§4.1).  Three execution disciplines appear in the
evaluation:

* **pool** — C-Graph's default: queries run concurrently on the cluster's
  worker pool (one slot per hardware-thread group); a query's response time
  is queueing delay + its own service time.  Titan is modelled the same way
  (it also serves queries concurrently), just with far larger service times.
* **serialized** — the Gemini comparison (Figures 8b, 13): "concurrently
  issued queries are serialized and a query's response time will be
  determined by any backlogged queries".  Equivalent to a pool of width 1.
* **batch** — bit-parallel mode (§3.5, Figure 13): queries are packed into
  word-wide batches that traverse together; a query completes when its own
  frontier dies (possibly earlier than its batch finishes the full k hops).

:func:`simulate_fifo_pool` is a deterministic multi-server FIFO queue
simulation; it converts per-query service times into response times for the
first two disciplines.  :func:`batch_response_times` maps batch-mode
completion times back to individual queries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "simulate_fifo_pool",
    "simulate_serialized",
    "batch_response_times",
    "QueryScheduler",
]


def simulate_fifo_pool(
    service_times,
    concurrency: int,
    arrival_times=None,
) -> np.ndarray:
    """Response times of queries run FIFO on ``concurrency`` worker slots.

    Queries are admitted in index order (ties in arrival time keep index
    order).  Returns ``finish - arrival`` per query.
    """
    service = np.asarray(service_times, dtype=np.float64)
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")
    n = service.size
    arrivals = (
        np.zeros(n) if arrival_times is None else np.asarray(arrival_times, float)
    )
    if arrivals.shape != service.shape:
        raise ValueError("arrival_times must match service_times")
    order = np.argsort(arrivals, kind="stable")
    free: list[float] = [0.0] * concurrency
    heapq.heapify(free)
    response = np.empty(n)
    for idx in order:
        slot = heapq.heappop(free)
        start = max(slot, arrivals[idx])
        finish = start + service[idx]
        heapq.heappush(free, finish)
        response[idx] = finish - arrivals[idx]
    return response


def simulate_serialized(service_times, arrival_times=None) -> np.ndarray:
    """Gemini-style serialisation: a width-1 pool (responses stack up)."""
    return simulate_fifo_pool(service_times, 1, arrival_times)


def batch_response_times(
    batch_start_times,
    per_query_batch: np.ndarray,
    per_query_offset_within_batch,
) -> np.ndarray:
    """Response times in bit-parallel batch mode.

    ``batch_start_times[b]`` is when batch ``b`` starts executing;
    ``per_query_offset_within_batch[q]`` is the virtual time *into its batch*
    at which query ``q``'s frontier died (its individual completion).
    """
    starts = np.asarray(batch_start_times, dtype=np.float64)
    batch_of = np.asarray(per_query_batch)
    offsets = np.asarray(per_query_offset_within_batch, dtype=np.float64)
    if batch_of.shape != offsets.shape:
        raise ValueError("per-query arrays must align")
    if batch_of.size and (batch_of.min() < 0 or batch_of.max() >= starts.size):
        raise ValueError("batch index out of range")
    return starts[batch_of] + offsets


@dataclass
class QueryScheduler:
    """Turns per-query service times into response times under a policy.

    ``concurrency`` approximates the cluster's usable query slots: the paper
    runs up to 350 concurrent queries on 9 × 44-core machines, but traversal
    work is memory-bound, so a slot count well below the core count is
    realistic.  The default (16 per machine) reproduces the paper's knee:
    up to ~100 queries respond fast; at 350 queueing dominates (Figure 12).
    """

    num_machines: int = 1
    slots_per_machine: int = 16

    @property
    def concurrency(self) -> int:
        return max(self.num_machines * self.slots_per_machine, 1)

    def pool(self, service_times, arrival_times=None) -> np.ndarray:
        """C-Graph / Titan discipline: concurrent FIFO pool."""
        return simulate_fifo_pool(service_times, self.concurrency, arrival_times)

    def serialized(self, service_times, arrival_times=None) -> np.ndarray:
        """Gemini discipline: one query at a time."""
        return simulate_serialized(service_times, arrival_times)
