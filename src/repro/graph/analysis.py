"""Graph analysis utilities: hop plots, effective diameter, degree stats.

Figure 1 of the paper shows the *hop plot* (cumulative distribution of
pairwise path lengths) of the Slashdot Zoo graph with its KONECT-style
effective diameters: delta_0.5 = 3.51 and delta_0.9 = 4.71, diameter 12.
:func:`hop_plot` computes the same curve (exactly, or sampled for large
graphs) via repeated vectorised BFS, and :func:`effective_diameter` applies
the KONECT linear-interpolation definition.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import build_csr
from repro.graph.edgelist import EdgeList

__all__ = [
    "bfs_levels",
    "hop_plot",
    "effective_diameter",
    "degree_statistics",
    "degree_histogram",
    "average_clustering",
    "largest_connected_component_size",
]


def bfs_levels(edges: EdgeList, source: int, csr=None) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 when unreachable).

    A frontier-array BFS: each level expands all frontier out-edges in one
    vectorised pass (the single-query ancestor of the engine in
    :mod:`repro.core`).
    """
    n = edges.num_vertices
    if csr is None:
        csr = build_csr(edges.src, edges.dst, n)
    level = np.full(n, -1, dtype=np.int32)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        pos, _ = csr.gather_edges(frontier)
        targets = csr.indices[pos]
        fresh = targets[level[targets] < 0]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        level[fresh] = depth
        frontier = fresh
    return level


def hop_plot(
    edges: EdgeList,
    num_sources: int | None = None,
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative distribution of pairwise hop distances (Figure 1).

    Runs BFS from every vertex (or ``num_sources`` sampled vertices for large
    graphs) and accumulates, for each distance ``d``, the fraction of
    reachable ordered pairs with distance <= d.

    Returns ``(distances, cumulative_fraction)`` where ``distances`` is
    ``0..max_distance`` and ``cumulative_fraction[d]`` is the hop-plot value
    at ``d`` (reaching 1.0 at the diameter).
    """
    n = edges.num_vertices
    rng = np.random.default_rng(seed)
    if num_sources is None or num_sources >= n:
        sources = np.arange(n)
    else:
        sources = rng.choice(n, size=num_sources, replace=False)
    csr = build_csr(edges.src, edges.dst, n)
    counts = np.zeros(1, dtype=np.int64)
    for s in sources:
        lv = bfs_levels(edges, int(s), csr=csr)
        reached = lv[lv >= 0]
        hist = np.bincount(reached)
        if hist.size > counts.size:
            counts = np.pad(counts, (0, hist.size - counts.size))
        counts[: hist.size] += hist
    total = counts.sum()
    if total == 0:
        return np.array([0]), np.array([1.0])
    cdf = np.cumsum(counts) / total
    return np.arange(counts.size), cdf


def effective_diameter(
    distances: np.ndarray, cdf: np.ndarray, quantile: float = 0.9
) -> float:
    """KONECT-style effective diameter: interpolated distance at a CDF quantile.

    ``delta_q`` is the (linearly interpolated) number of hops within which a
    fraction ``q`` of all connected pairs lie.  With ``q=0.5`` on the paper's
    Slashdot Zoo graph this gives 3.51; with ``q=0.9``, 4.71.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    cdf = np.asarray(cdf, dtype=np.float64)
    distances = np.asarray(distances, dtype=np.float64)
    idx = int(np.searchsorted(cdf, quantile, side="left"))
    if idx == 0:
        return float(distances[0])
    if idx >= cdf.size:
        return float(distances[-1])
    c0, c1 = cdf[idx - 1], cdf[idx]
    d0, d1 = distances[idx - 1], distances[idx]
    if c1 == c0:
        return float(d1)
    return float(d0 + (quantile - c0) / (c1 - c0) * (d1 - d0))


def degree_statistics(edges: EdgeList) -> dict:
    """Mean/max out-degree and skew summary (drives response-time variance).

    The paper notes "the response time highly depends on the average degree
    of root vertices" (38 / 27 / 108 for its three graphs); this helper lets
    benches report the analog's figures next to them.
    """
    deg = edges.out_degrees()
    nonzero = deg[deg > 0]
    return {
        "vertices": edges.num_vertices,
        "edges": edges.num_edges,
        "avg_out_degree": float(deg.mean()) if deg.size else 0.0,
        "max_out_degree": int(deg.max()) if deg.size else 0,
        "p99_out_degree": float(np.percentile(deg, 99)) if deg.size else 0.0,
        "isolated_fraction": float((deg == 0).mean()) if deg.size else 0.0,
        "gini_out_degree": _gini(nonzero) if nonzero.size else 0.0,
    }


def degree_histogram(edges: EdgeList, log_bins: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Out-degree distribution, optionally on logarithmic bins.

    Returns ``(bin_edges, counts)``; log bins make the power-law tail of the
    social analogs visible in a glance (the skew that drives the paper's
    response-time variance).
    """
    deg = edges.out_degrees()
    if deg.size == 0 or deg.max() == 0:
        return np.array([0, 1]), np.array([deg.size])
    if log_bins:
        top = int(deg.max())
        edges_arr = np.unique(
            np.concatenate([[0, 1], np.geomspace(1, top + 1, num=16)])
        ).astype(np.float64)
    else:
        edges_arr = np.arange(0, deg.max() + 2, dtype=np.float64)
    counts, _ = np.histogram(deg, bins=edges_arr)
    return edges_arr, counts


def average_clustering(edges: EdgeList) -> float:
    """Mean local clustering coefficient of the undirected simple view.

    ``c(v) = triangles(v) / wedges(v)``; vertices of degree < 2 contribute 0
    (networkx's convention).  Small-world analogs (Figure 1) have high
    clustering; R-MAT analogs low — a quick fingerprint for dataset tests.
    """
    from repro.core.triangles import local_triangles

    simple = edges.symmetrize().remove_self_loops().deduplicate()
    tri = local_triangles(simple)
    deg = simple.out_degrees()
    wedges = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        local = np.where(wedges > 0, tri / wedges, 0.0)
    return float(local.mean()) if local.size else 0.0


def largest_connected_component_size(edges: EdgeList) -> int:
    """Size of the largest weakly connected component (via undirected BFS)."""
    sym = edges.symmetrize()
    n = sym.num_vertices
    csr = build_csr(sym.src, sym.dst, n)
    seen = np.zeros(n, dtype=bool)
    best = 0
    for start in range(n):
        if seen[start]:
            continue
        lv = bfs_levels(sym, start, csr=csr)
        comp = lv >= 0
        comp &= ~seen
        size = int(comp.sum())
        seen |= lv >= 0
        best = max(best, size)
        if best > n - int(seen.sum()):
            break
    return best


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (degree skew measure)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = v.size
    if n == 0 or v.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * np.sum(index * v) - (n + 1) * v.sum()) / (n * v.sum()))
