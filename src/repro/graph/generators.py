"""Synthetic graph generators.

The paper builds its large datasets with the **Graph 500 generator** (a
Kronecker/R-MAT recursive-matrix generator) seeded from Friendster's
edge/vertex ratio.  :func:`graph500_kronecker` reproduces that generator with
the reference Graph500 probabilities; :func:`rmat_edges` exposes the general
R-MAT form.  Classic generators (Erdős–Rényi, Watts–Strogatz small-world,
star/path/grid/complete) support tests and the Figure 1 hop-plot analog.

All generators are fully vectorised and deterministic under an explicit
``numpy.random.Generator`` seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "rmat_edges",
    "graph500_kronecker",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "star_graph",
    "path_graph",
    "grid_graph",
    "complete_graph",
]

#: Reference Graph500 R-MAT quadrant probabilities (a, b, c, d).
GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def rmat_edges(
    scale: int,
    num_edges: int,
    probs: tuple[float, float, float, float] = GRAPH500_PROBS,
    seed=0,
    noise: float = 0.0,
) -> EdgeList:
    """Generate an R-MAT graph with ``2**scale`` vertices and ``num_edges`` edges.

    Each edge independently descends ``scale`` levels of the recursive 2×2
    matrix, choosing quadrant ``(0,0)/(0,1)/(1,0)/(1,1)`` with probabilities
    ``(a, b, c, d)``.  Vectorised: one ``(num_edges, scale)`` draw decides
    every quadrant at once; source/destination bits are the quadrant's
    row/column bits.

    ``noise`` perturbs the probabilities per level (SmoothKron-style) to
    avoid the artificial staircase degree distribution of pure Kronecker.
    Self-loops and duplicates are kept, as in the reference generator;
    callers wanting a simple graph apply
    :meth:`~repro.graph.edgelist.EdgeList.deduplicate` /
    :meth:`~repro.graph.edgelist.EdgeList.remove_self_loops`.
    """
    if scale < 0 or scale > 31:
        raise ValueError("scale must be in [0, 31] for int32 vertex ids")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("probabilities must sum to 1")
    rng = _rng(seed)
    n = 1 << scale
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    u = rng.random((num_edges, max(scale, 1)))
    for level in range(scale):
        if noise:
            delta = rng.uniform(-noise, noise)
            aa = max(min(a + delta, 0.999), 1e-3)
            rest = 1.0 - aa
            total_rest = b + c + d
            bb, cc, dd = (b / total_rest * rest, c / total_rest * rest, d / total_rest * rest)
        else:
            aa, bb, cc, dd = a, b, c, d
        ul = u[:, level]
        quad = np.digitize(ul, np.cumsum([aa, bb, cc])[:3])
        src_bit = quad >> 1
        dst_bit = quad & 1
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return EdgeList(src, dst, n)


def graph500_kronecker(scale: int, edgefactor: float = 16.0, seed=0) -> EdgeList:
    """The Graph 500 reference kernel-1 generator.

    ``2**scale`` vertices and ``edgefactor * 2**scale`` edges drawn with the
    reference probabilities, followed by the reference's vertex permutation
    (to hide the id/degree correlation of raw R-MAT).
    """
    n = 1 << scale
    m = int(round(edgefactor * n))
    rng = _rng(seed)
    edges = rmat_edges(scale, m, GRAPH500_PROBS, seed=rng)
    perm = rng.permutation(n).astype(np.int64)
    return EdgeList(perm[edges.src], perm[edges.dst], n)


def erdos_renyi(num_vertices: int, num_edges: int, seed=0) -> EdgeList:
    """G(n, m): ``num_edges`` directed edges drawn uniformly (with repeats)."""
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return EdgeList(src, dst, num_vertices)


def watts_strogatz(num_vertices: int, k: int, rewire_p: float, seed=0) -> EdgeList:
    """Small-world ring lattice with rewiring, as a *directed symmetric* graph.

    Each vertex connects to its ``k`` nearest clockwise neighbours; each such
    edge is rewired to a uniform random endpoint with probability
    ``rewire_p``.  The result is symmetrised.  Used for the Slashdot-Zoo
    analog in the Figure 1 hop-plot experiment: small diameter, high
    clustering.
    """
    if k < 1 or k >= num_vertices:
        raise ValueError("k must be in [1, n)")
    rng = _rng(seed)
    base = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
    offset = np.tile(np.arange(1, k + 1, dtype=np.int64), num_vertices)
    dst = (base + offset) % num_vertices
    rewire = rng.random(base.size) < rewire_p
    dst[rewire] = rng.integers(0, num_vertices, size=int(rewire.sum()), dtype=np.int64)
    el = EdgeList(base, dst, num_vertices)
    return el.remove_self_loops().symmetrize()


def barabasi_albert(num_vertices: int, m: int, seed=0) -> EdgeList:
    """Preferential attachment: each new vertex links to ``m`` earlier ones.

    The repeated-nodes implementation: attachment targets are drawn
    uniformly from the running endpoint list, which is equivalent to
    degree-proportional sampling.  Produces the power-law degree tails of
    real social networks (an alternative to R-MAT for analog building).
    Result is symmetrised.
    """
    if m < 1 or m >= num_vertices:
        raise ValueError("m must be in [1, num_vertices)")
    rng = _rng(seed)
    src = np.empty((num_vertices - m) * m, dtype=np.int64)
    dst = np.empty_like(src)
    # seed clique endpoints so early draws have targets
    repeated = list(range(m))
    pos = 0
    for v in range(m, num_vertices):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in targets:
            src[pos] = v
            dst[pos] = t
            pos += 1
            repeated.append(v)
            repeated.append(t)
    el = EdgeList(src[:pos], dst[:pos], num_vertices)
    return el.symmetrize()


def star_graph(num_leaves: int) -> EdgeList:
    """Vertex 0 points at ``1..num_leaves`` (plus reverse edges)."""
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.concatenate([hub, leaves])
    dst = np.concatenate([leaves, hub])
    return EdgeList(src, dst, num_leaves + 1)


def path_graph(num_vertices: int, directed: bool = False) -> EdgeList:
    """A simple path ``0 - 1 - ... - (n-1)``; bidirectional unless ``directed``."""
    a = np.arange(num_vertices - 1, dtype=np.int64)
    b = a + 1
    if directed:
        return EdgeList(a, b, num_vertices)
    return EdgeList(np.concatenate([a, b]), np.concatenate([b, a]), num_vertices)


def grid_graph(rows: int, cols: int) -> EdgeList:
    """A 2-D 4-neighbour grid (bidirectional edges), ``rows * cols`` vertices."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    fwd = np.concatenate([horiz, vert], axis=0)
    both = np.concatenate([fwd, fwd[:, ::-1]], axis=0)
    return EdgeList(both[:, 0], both[:, 1], rows * cols)


def complete_graph(num_vertices: int) -> EdgeList:
    """All ordered pairs ``(u, v), u != v``."""
    u, v = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    mask = u != v
    return EdgeList(u[mask], v[mask], num_vertices)
