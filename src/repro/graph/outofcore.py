"""Out-of-core edge-set storage: shards larger than memory (§3 overview).

"Note that a subgraph shard does not necessarily need to fit in memory; as a
result, the I/O cost may also involve local disk I/O."  This module spills a
partition's edge-set blocks to disk (one ``.npz`` per block, GraphChi-style)
and serves them back through an LRU cache of configurable capacity.  Every
cache miss is counted — block loads and bytes — so the runtime's
:class:`~repro.runtime.netmodel.NetworkModel` can charge the disk tier of
the I/O hierarchy, and the cache-size ablation can show the locality value
of edge-set consolidation (§3.2: "loading or persisting many such small
edge-sets is inefficient due to the I/O latency").
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.graph.csr import CSR
from repro.graph.edgeset import EdgeSet, EdgeSetMatrix

__all__ = ["SpillableEdgeSetStore"]


class SpillableEdgeSetStore:
    """Disk-backed block store over one partition's :class:`EdgeSetMatrix`.

    Parameters
    ----------
    edge_sets:
        The in-memory blocked representation to spill.
    directory:
        Where block files live (created if missing).
    cache_blocks:
        Maximum number of blocks held in memory at once (LRU eviction).
        ``0`` forces a disk read per access — the pathological case the
        paper's consolidation avoids.
    """

    def __init__(self, edge_sets: EdgeSetMatrix, directory, cache_blocks: int = 4):
        if cache_blocks < 0:
            raise ValueError("cache_blocks must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cache_blocks = cache_blocks
        self._meta: list[tuple[int, int, int, int]] = []
        self._sizes: list[int] = []
        self._cache: OrderedDict[int, EdgeSet] = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.bytes_read = 0
        for i, block in enumerate(edge_sets.row_major_blocks()):
            path = self._path(i)
            payload = {
                "indptr": block.csr.indptr,
                "indices": block.csr.indices,
            }
            if block.csr.weights is not None:
                payload["weights"] = block.csr.weights
            np.savez(path, **payload)
            self._meta.append(
                (block.row_lo, block.row_hi, block.col_lo, block.col_hi)
            )
            self._sizes.append(path.stat().st_size)

    @property
    def num_blocks(self) -> int:
        return len(self._meta)

    def block_bounds(self, index: int) -> tuple[int, int, int, int]:
        """(row_lo, row_hi, col_lo, col_hi) of block ``index``."""
        return self._meta[index]

    def get_block(self, index: int, stats=None) -> EdgeSet:
        """Fetch block ``index``, loading from disk on a cache miss.

        ``stats`` (a :class:`~repro.runtime.netmodel.StepStats`) receives
        ``record_disk_read`` on every miss.
        """
        if index in self._cache:
            self.hits += 1
            self._cache.move_to_end(index)
            return self._cache[index]
        block = self._load(index)
        self.loads += 1
        self.bytes_read += self._sizes[index]
        if stats is not None:
            stats.record_disk_read(self._sizes[index])
        if self.cache_blocks > 0:
            self._cache[index] = block
            while len(self._cache) > self.cache_blocks:
                self._cache.popitem(last=False)
        return block

    def iter_blocks(self, stats=None):
        """All blocks in row-major order, through the cache."""
        for i in range(self.num_blocks):
            yield self.get_block(i, stats=stats)

    def hit_rate(self) -> float:
        total = self.hits + self.loads
        return self.hits / total if total else 1.0

    def resident_bytes(self) -> int:
        """Memory currently pinned by cached blocks."""
        return sum(b.csr.nbytes() for b in self._cache.values())

    def _path(self, index: int) -> Path:
        return self.directory / f"block_{index:05d}.npz"

    def _load(self, index: int) -> EdgeSet:
        row_lo, row_hi, col_lo, col_hi = self._meta[index]
        with np.load(self._path(index)) as data:
            weights = data["weights"] if "weights" in data.files else None
            csr = CSR(
                indptr=data["indptr"],
                indices=data["indices"],
                weights=weights,
            )
        return EdgeSet(row_lo, row_hi, col_lo, col_hi, csr)
