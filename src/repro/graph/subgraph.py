"""Induced subgraph extraction — materialising query results as graphs.

A k-hop query's natural *result object* for downstream analysis is the
induced neighbourhood subgraph (the paper's queries "return with found
paths"; applications like the recommendation example in §1 then analyse the
neighbourhood).  :func:`induced_subgraph` relabels a vertex subset densely
and keeps the edges among it; :func:`khop_subgraph` composes that with the
query engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["Subgraph", "induced_subgraph", "khop_subgraph"]


@dataclass
class Subgraph:
    """An induced subgraph with its mapping back to the parent graph.

    ``vertices[i]`` is the parent id of local vertex ``i``; ``edges`` uses
    local ids.
    """

    edges: EdgeList
    vertices: np.ndarray  # local id -> parent id

    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    @property
    def num_edges(self) -> int:
        return self.edges.num_edges

    def to_parent(self, local_ids) -> np.ndarray:
        """Map local vertex id(s) back to parent graph ids."""
        return self.vertices[np.asarray(local_ids)]

    def from_parent(self, parent_ids) -> np.ndarray:
        """Map parent id(s) to local ids (-1 when not in the subgraph)."""
        parent_ids = np.asarray(parent_ids)
        sorter = np.argsort(self.vertices)
        pos = np.searchsorted(self.vertices, parent_ids, sorter=sorter)
        pos = np.clip(pos, 0, self.vertices.size - 1)
        found = self.vertices[sorter[pos]] == parent_ids
        out = np.where(found, sorter[pos], -1)
        return out


def induced_subgraph(edges: EdgeList, vertices) -> Subgraph:
    """The subgraph induced by ``vertices`` (kept edges have both endpoints
    inside), with vertices relabelled ``0..len(vertices)-1`` in sorted parent
    order.  Duplicate ids are collapsed; weights are carried."""
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size and (
        vertices.min() < 0 or vertices.max() >= edges.num_vertices
    ):
        raise ValueError("subgraph vertex out of range")
    lookup = np.full(edges.num_vertices, -1, dtype=np.int64)
    lookup[vertices] = np.arange(vertices.size)
    src_local = lookup[edges.src]
    dst_local = lookup[edges.dst]
    keep = (src_local >= 0) & (dst_local >= 0)
    weights = None if edges.weight is None else edges.weight[keep]
    sub = EdgeList(src_local[keep], dst_local[keep], vertices.size, weights)
    return Subgraph(edges=sub, vertices=vertices)


def khop_subgraph(
    edges: EdgeList, source: int, k: int, num_machines: int = 1
) -> Subgraph:
    """The induced subgraph of everything within ``k`` hops of ``source``."""
    from repro.core.traversal import khop_query

    from repro.graph.partition import range_partition

    pg = range_partition(edges, num_machines)
    members = khop_query(pg, source, k)
    return induced_subgraph(edges, members)
