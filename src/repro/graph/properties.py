"""Vertex property storage, including the paper's level-limited store (§3.3).

Concurrent queries are memory-hungry: a naive engine keeps one value per
vertex per query for the whole traversal.  C-Graph instead "only stores
vertex values for those in the previous and current levels", reclaiming every
older level as the frontier advances.  :class:`LevelLimitedValues` implements
exactly that contract and exposes byte accounting so the memory ablation
bench can quantify the saving against :class:`DenseVertexValues`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DenseVertexValues", "LevelLimitedValues"]


class DenseVertexValues:
    """Baseline store: one dense value array per query for all vertices."""

    def __init__(self, num_vertices: int, num_queries: int, fill: float = -1.0):
        self.values = np.full((num_queries, num_vertices), fill, dtype=np.float64)

    def set_level(self, query: int, vertices: np.ndarray, value: float) -> None:
        """Record ``value`` for ``vertices`` under ``query``."""
        self.values[query, vertices] = value

    def get(self, query: int, vertex: int) -> float:
        return float(self.values[query, vertex])

    def nbytes(self) -> int:
        return int(self.values.nbytes)


class LevelLimitedValues:
    """Sparse two-level store: values only for previous + current frontier.

    The store accepts one level at a time per query (monotonically
    increasing, as a traversal produces them) and retains at most the two
    most recent levels.  Older values become unavailable — that is the
    paper's deliberate trade: a k-hop query only ever needs its parents'
    values to extend the frontier.

    ``peak_nbytes`` tracks the high-water mark, the number the paper's memory
    argument is about.
    """

    def __init__(self, num_queries: int):
        self.num_queries = num_queries
        # per query: {level: (vertex_array, value_array)} with <= 2 entries
        self._levels: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
            {} for _ in range(num_queries)
        ]
        self.peak_nbytes = 0

    def push_level(
        self, query: int, level: int, vertices: np.ndarray, values: np.ndarray
    ) -> None:
        """Store this level's frontier values, evicting levels older than 1.

        Raises ``ValueError`` if levels arrive out of order for the query.
        """
        store = self._levels[query]
        if store and level <= max(store):
            raise ValueError(f"level {level} not ahead of stored levels {sorted(store)}")
        vertices = np.asarray(vertices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if vertices.shape != values.shape:
            raise ValueError("vertices/values shape mismatch")
        store[level] = (vertices, values)
        while len(store) > 2:
            del store[min(store)]
        self.peak_nbytes = max(self.peak_nbytes, self.nbytes())

    def get_level(self, query: int, level: int) -> tuple[np.ndarray, np.ndarray]:
        """Fetch a retained level; ``KeyError`` if it was reclaimed."""
        return self._levels[query][level]

    def available_levels(self, query: int) -> list[int]:
        return sorted(self._levels[query])

    def nbytes(self) -> int:
        total = 0
        for store in self._levels:
            for verts, vals in store.values():
                total += verts.nbytes + vals.nbytes
        return total
