"""Edge-set (blocked adjacency) representation with consolidation (§3.2).

A partition's adjacency matrix is tiled into *edge-sets*: blocks defined by a
row range × column range of vertex ids.  Ranges are chosen by evenly
distributing vertex degree ("we divide the vertices of each subgraph into a
set of ranges by evenly distributing the degrees"), so every block holds a
similar number of edges and — in the paper's C++ incarnation — fits the last
level cache together with its vertex values.

Real graphs are sparse, so many blocks are tiny; the paper consolidates small
adjacent edge-sets *horizontally* (helps scanning out-edges) and *vertically*
(helps gathering from parents).  :func:`EdgeSetMatrix.consolidate` implements
both.

In this Python reproduction the blocks also bound the working set of each
vectorised numpy pass, so the locality argument carries over directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSR, build_csr

__all__ = ["EdgeSet", "EdgeSetMatrix", "degree_balanced_ranges"]


def degree_balanced_ranges(degrees: np.ndarray, num_ranges: int) -> np.ndarray:
    """Split ``[0, n)`` into ``num_ranges`` contiguous ranges of ~equal degree.

    Returns boundaries ``b`` with ``b[0] == 0``, ``b[-1] == n``; range ``i``
    is ``[b[i], b[i+1])``.  Uses the cumulative-degree quantile trick
    (``searchsorted`` on the prefix sum), the same scheme the paper uses both
    for machine-level partitioning and for edge-set ranges.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if num_ranges <= 0:
        raise ValueError("num_ranges must be positive")
    if num_ranges > max(n, 1):
        num_ranges = max(n, 1)
    cumulative = np.cumsum(degrees)
    total = int(cumulative[-1]) if n else 0
    if n == 0:
        return np.zeros(num_ranges + 1, dtype=np.int64)
    targets = (np.arange(1, num_ranges, dtype=np.float64) * total) / num_ranges
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    np.maximum.accumulate(bounds, out=bounds)  # keep monotone when degrees are 0
    np.clip(bounds, 0, n, out=bounds)
    return bounds


@dataclass(frozen=True)
class EdgeSet:
    """One block of the tiled adjacency matrix.

    Rows are sources in ``[row_lo, row_hi)`` (ids local to the owning
    partition's row space) and columns are destinations in
    ``[col_lo, col_hi)`` (global ids).  The block stores its edges in CSR over
    its *local* row offsets, so scanning it touches a bounded working set.
    """

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    csr: CSR = field(repr=False)

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def num_rows(self) -> int:
        return self.row_hi - self.row_lo

    def nbytes(self) -> int:
        return self.csr.nbytes()

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise ``(src, dst)`` with src in block-owner row space."""
        deg = self.csr.degrees()
        src = np.repeat(np.arange(self.num_rows, dtype=np.int64), deg) + self.row_lo
        return src, self.csr.indices.astype(np.int64)


class EdgeSetMatrix:
    """The set of edge-sets tiling one partition's out-edge adjacency matrix.

    Parameters
    ----------
    src, dst:
        Partition-local edge arrays: ``src`` in ``[0, num_rows)`` (local row
        ids), ``dst`` global destination ids in ``[0, num_cols)``.
    row_bounds, col_bounds:
        Monotone boundary arrays (as produced by
        :func:`degree_balanced_ranges`).
    weights:
        Optional per-edge weights carried into each block's CSR.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_rows: int,
        num_cols: int,
        row_bounds: np.ndarray,
        col_bounds: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.row_bounds = np.asarray(row_bounds, dtype=np.int64)
        self.col_bounds = np.asarray(col_bounds, dtype=np.int64)
        _check_bounds(self.row_bounds, self.num_rows)
        _check_bounds(self.col_bounds, self.num_cols)
        src = np.asarray(src)
        dst = np.asarray(dst)

        row_blk = np.searchsorted(self.row_bounds, src, side="right") - 1
        col_blk = np.searchsorted(self.col_bounds, dst, side="right") - 1
        n_col_blocks = self.col_bounds.size - 1
        key = row_blk * n_col_blocks + col_blk
        order = np.argsort(key, kind="stable")

        self.blocks: list[EdgeSet] = []
        sorted_key = key[order]
        # Boundaries between runs of equal block key.
        starts = np.concatenate(
            [[0], np.nonzero(sorted_key[1:] != sorted_key[:-1])[0] + 1, [order.size]]
        )
        for a, b in zip(starts[:-1], starts[1:]):
            if a == b:
                continue
            sel = order[a:b]
            blk = int(sorted_key[a])
            ri, ci = divmod(blk, n_col_blocks)
            row_lo, row_hi = int(self.row_bounds[ri]), int(self.row_bounds[ri + 1])
            col_lo, col_hi = int(self.col_bounds[ci]), int(self.col_bounds[ci + 1])
            w = None if weights is None else np.asarray(weights)[sel]
            csr = build_csr(src[sel] - row_lo, dst[sel], row_hi - row_lo, weights=w)
            self.blocks.append(EdgeSet(row_lo, row_hi, col_lo, col_hi, csr))

    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    def nbytes(self) -> int:
        return sum(b.nbytes() for b in self.blocks)

    def blocks_for_rows(self, row_lo: int, row_hi: int) -> list[EdgeSet]:
        """Blocks intersecting the row range (left-to-right scan order)."""
        return [b for b in self.blocks if b.row_lo < row_hi and b.row_hi > row_lo]

    def row_major_blocks(self) -> list[EdgeSet]:
        """All blocks sorted for the paper's left-to-right, top-down scan."""
        return sorted(self.blocks, key=lambda b: (b.row_lo, b.col_lo))

    def consolidate(self, min_edges: int) -> "EdgeSetMatrix":
        """Merge small adjacent edge-sets (horizontal first, then vertical).

        Any block with fewer than ``min_edges`` edges is merged with its
        neighbour in the same row stripe (horizontal consolidation); stripes
        still too small after that are merged with the stripe below (vertical
        consolidation).  Implemented by coarsening the boundary arrays and
        rebuilding, which preserves the representation invariant exactly.
        """
        col_edge_counts = self._stripe_counts(axis="col")
        new_col_bounds = _merge_bounds(self.col_bounds, col_edge_counts, min_edges)
        row_edge_counts = self._stripe_counts(axis="row")
        new_row_bounds = _merge_bounds(self.row_bounds, row_edge_counts, min_edges)
        src, dst, w = self._all_edges()
        return EdgeSetMatrix(
            src,
            dst,
            self.num_rows,
            self.num_cols,
            new_row_bounds,
            new_col_bounds,
            weights=w,
        )

    # ------------------------------------------------------------------ #

    def _all_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        srcs, dsts, ws = [], [], []
        weighted = any(b.csr.weights is not None for b in self.blocks)
        for b in self.blocks:
            s, d = b.edges()
            srcs.append(s)
            dsts.append(d)
            if weighted:
                ws.append(b.csr.weights)
        src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
        w = np.concatenate(ws) if weighted and ws else None
        return src, dst, w

    def _stripe_counts(self, axis: str) -> np.ndarray:
        bounds = self.row_bounds if axis == "row" else self.col_bounds
        counts = np.zeros(bounds.size - 1, dtype=np.int64)
        for b in self.blocks:
            lo = b.row_lo if axis == "row" else b.col_lo
            idx = int(np.searchsorted(bounds, lo, side="right") - 1)
            counts[idx] += b.nnz
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeSetMatrix(rows={self.num_rows}, cols={self.num_cols}, "
            f"blocks={len(self.blocks)}, nnz={self.nnz})"
        )


def _check_bounds(bounds: np.ndarray, n: int) -> None:
    if bounds.size < 2 or bounds[0] != 0 or bounds[-1] != n:
        raise ValueError(f"bounds must span [0, {n}]")
    if np.any(np.diff(bounds) < 0):
        raise ValueError("bounds must be monotone non-decreasing")


def _merge_bounds(
    bounds: np.ndarray, stripe_counts: np.ndarray, min_edges: int
) -> np.ndarray:
    """Greedily merge consecutive stripes until each has >= min_edges.

    The final stripe may stay small if the whole matrix has too few edges.
    """
    kept = [int(bounds[0])]
    acc = 0
    for i, c in enumerate(stripe_counts):
        acc += int(c)
        if acc >= min_edges:
            kept.append(int(bounds[i + 1]))
            acc = 0
    if kept[-1] != int(bounds[-1]):
        if len(kept) > 1 and acc < min_edges:
            kept[-1] = int(bounds[-1])  # fold the small tail into the last stripe
        else:
            kept.append(int(bounds[-1]))
    return np.asarray(kept, dtype=np.int64)
