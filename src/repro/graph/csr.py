"""Vectorised CSR / CSC sparse adjacency construction (§3.2).

The paper stores out-going edges in compressed sparse row (CSR) and incoming
edges in compressed sparse column (CSC) so that both access directions are
sequential.  A CSC of the adjacency matrix is exactly the CSR of the reversed
edge list, so one builder serves both.

Construction is a counting sort: ``O(m)`` with pure numpy primitives
(``bincount`` + ``cumsum`` + stable ``argsort`` on a single key), following
the "vectorise the loop" idiom from the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSR", "build_csr", "build_csc", "expand_ranges"]


@dataclass(frozen=True)
class CSR:
    """Compressed sparse row adjacency over ``num_rows`` row vertices.

    ``indices[indptr[v]:indptr[v+1]]`` are the neighbours of row ``v``.
    Column ids are *global* vertex ids (a partition's CSR keeps global
    neighbour ids so boundary vertices are directly addressable).
    """

    indptr: np.ndarray  # int64, shape (num_rows + 1,)
    indices: np.ndarray  # int32, shape (nnz,)
    weights: np.ndarray | None = None  # float64, shape (nnz,) or None

    @property
    def num_rows(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def degree(self, v: int) -> int:
        """Number of stored neighbours of row ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Per-row neighbour counts, shape ``(num_rows,)``."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of row ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`; requires a weighted CSR."""
        if self.weights is None:
            raise ValueError("CSR has no weights")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def gather_edges(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_positions, row_multiplicity)`` for a set of rows.

        ``edge_positions`` indexes into ``indices``/``weights`` and covers
        every edge whose source is in ``rows`` (in row order);
        ``row_multiplicity[i]`` is the out-degree of ``rows[i]``.  This is the
        frontier-expansion primitive the traversal engines build on.
        """
        rows = np.asarray(rows)
        starts = self.indptr[rows]
        ends = self.indptr[rows + 1]
        return expand_ranges(starts, ends), (ends - starts)

    def nbytes(self) -> int:
        """Total memory footprint of the stored arrays."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)


def expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]`` without a loop.

    The classic cumsum trick: total output length is ``sum(ends - starts)``;
    we lay down ones, add a corrective jump at each range boundary, and
    cumulative-sum.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    counts = ends - starts
    if np.any(counts < 0):
        raise ValueError("ranges must have non-negative length")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    boundaries = np.cumsum(counts[:-1])
    nonempty = counts > 0
    first_nonempty = np.argmax(nonempty)  # counts[first_nonempty] > 0 since total > 0
    out[0] = starts[first_nonempty]
    # At each boundary between consecutive emitted ranges, jump from the end
    # of the previous non-empty range to the start of the next one.
    prev_end = ends[:-1][nonempty[:-1]]
    # Boundary positions only exist where the *previous* range was non-empty;
    # align jumps with the starts of the ranges that follow them.
    idx_nonempty = np.nonzero(nonempty)[0]
    if idx_nonempty.size > 1:
        jump_pos = np.cumsum(counts)[idx_nonempty[:-1]]
        next_starts = starts[idx_nonempty[1:]]
        prev_ends = ends[idx_nonempty[:-1]]
        out[jump_pos] = next_starts - prev_ends + 1
    return np.cumsum(out)


def build_csr(
    src: np.ndarray,
    dst: np.ndarray,
    num_rows: int,
    weights: np.ndarray | None = None,
    sort_columns: bool = True,
) -> CSR:
    """Build a CSR over rows ``[0, num_rows)`` from an edge list.

    Edges are grouped by source with a stable counting sort; within a row,
    columns are additionally sorted ascending when ``sort_columns`` (the
    paper updates "the vertex value array in ascending order" for cache
    locality while enumerating an edge-set).
    """
    src = np.asarray(src)
    dst = np.asarray(dst, dtype=np.int32)
    if src.shape != dst.shape:
        raise ValueError("src/dst length mismatch")
    counts = np.bincount(src, minlength=num_rows)
    if counts.size > num_rows:
        raise ValueError("row id out of range")
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    if sort_columns:
        # Single-key stable sort: key = src * n_cols_bound + dst would risk
        # overflow; two stable passes (dst then src) give the same order.
        order = np.argsort(dst, kind="stable")
        order = order[np.argsort(src[order], kind="stable")]
    else:
        order = np.argsort(src, kind="stable")
    indices = dst[order]
    w = None if weights is None else np.asarray(weights, dtype=np.float64)[order]
    return CSR(indptr=indptr, indices=indices, weights=w)


def build_csc(
    src: np.ndarray,
    dst: np.ndarray,
    num_cols: int,
    weights: np.ndarray | None = None,
    sort_rows: bool = True,
) -> CSR:
    """Build a CSC (stored as the CSR of the reversed edges).

    Row ``v`` of the result lists the *in*-neighbours (sources) of vertex
    ``v`` — the access pattern PageRank's gather phase needs.
    """
    return build_csr(dst, src, num_cols, weights=weights, sort_columns=sort_rows)
