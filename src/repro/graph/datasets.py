"""Named dataset registry — scaled analogs of the paper's Table 1.

The paper evaluates on Orkut (117M edges), Friendster (1.8B) and two
Graph500-synthetic graphs of 72B and 106B edges.  None of those fit a
laptop-scale pure-Python reproduction, and the SNAP downloads are not
available offline, so the registry builds **scaled analogs** with the same
generator family the paper itself uses for its big graphs (Graph500
Kronecker/R-MAT), matching each dataset's edge/vertex ratio:

========================  ==============  ==================  =========
registry name             paper dataset   scale factor        avg. deg.
========================  ==============  ==================  =========
``OR-100M``               Orkut           ×10⁻³ (edges)       38.1
``FR-1B``                 Friendster      ×10⁻³               27.5
``FRS-72B``               Friendster-Syn  ×10⁻⁴               550.4
``FRS-100B``              Friendster-Syn  ×10⁻⁴               108.3
``SLASHDOT-ZOO``          Slashdot Zoo    small-world analog  ~12
========================  ==============  ==================  =========

Because k-hop cost is driven by frontier growth — i.e. by average degree and
degree skew, which the analogs preserve — the *shapes* of the paper's
response-time results carry over (see DESIGN.md, substitutions table).

``REPRO_SCALE`` (environment variable, default ``1.0``) scales every analog's
vertex/edge counts further, so CI can run on tiny graphs while a full
benchmark run uses the defaults.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.generators import rmat_edges, watts_strogatz

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_table", "clear_cache"]


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry.

    ``paper_vertices``/``paper_edges`` are the Table 1 numbers; ``vertices``/
    ``edges`` are the analog's targets before ``REPRO_SCALE`` is applied.
    """

    name: str
    paper_dataset: str
    paper_vertices: int
    paper_edges: int
    vertices: int
    edges: int
    seed: int
    builder: Callable[["DatasetSpec", float], EdgeList]

    def scaled_sizes(self, scale: float) -> tuple[int, int]:
        """Analog (n, m) after applying the runtime scale factor."""
        n = max(int(round(self.vertices * scale)), 16)
        m = max(int(round(self.edges * scale)), 32)
        return n, m


def _build_rmat(spec: DatasetSpec, scale: float) -> EdgeList:
    """Graph500 Kronecker at the next power of two, folded to the target n.

    R-MAT needs ``2**s`` vertices; we generate at the covering scale and fold
    ids modulo ``n``.  Folding preserves the skewed degree distribution while
    hitting the exact analog vertex count.
    """
    n, m = spec.scaled_sizes(scale)
    s = max(int(np.ceil(np.log2(n))), 1)
    raw = rmat_edges(s, m, seed=spec.seed, noise=0.05)
    src = raw.src.astype(np.int64) % n
    dst = raw.dst.astype(np.int64) % n
    rng = np.random.default_rng(spec.seed + 1)
    perm = rng.permutation(n).astype(np.int64)
    el = EdgeList(perm[src], perm[dst], n)
    return el.remove_self_loops().deduplicate().symmetrize()


def _build_smallworld(spec: DatasetSpec, scale: float) -> EdgeList:
    """Watts–Strogatz analog of the Slashdot Zoo graph (Figure 1).

    The target is the original's *total degree* (~13: 515,581 directed edges
    over 79,120 vertices): each vertex links to ``k = m/n`` clockwise
    neighbours, so the symmetrised graph has degree ``2k ≈ 13``, which puts
    the effective diameter in the paper's 3.5–5 hop band.
    """
    n, m = spec.scaled_sizes(scale)
    k = max(int(round(m / n)), 2)
    return watts_strogatz(n, k, rewire_p=0.25, seed=spec.seed)


DATASETS: dict[str, DatasetSpec] = {
    "OR-100M": DatasetSpec(
        name="OR-100M",
        paper_dataset="Orkut",
        paper_vertices=3_072_441,
        paper_edges=117_185_083,
        vertices=3_072,
        edges=117_185,
        seed=42,
        builder=_build_rmat,
    ),
    "FR-1B": DatasetSpec(
        name="FR-1B",
        paper_dataset="Friendster",
        paper_vertices=65_608_366,
        paper_edges=1_806_067_135,
        vertices=65_608,
        edges=1_806_067,
        seed=43,
        builder=_build_rmat,
    ),
    "FRS-72B": DatasetSpec(
        name="FRS-72B",
        paper_dataset="Friendster-Synthetic (72B)",
        paper_vertices=131_216_732,
        paper_edges=72_224_268_540,
        vertices=13_122,
        edges=7_222_427,
        seed=44,
        builder=_build_rmat,
    ),
    "FRS-100B": DatasetSpec(
        name="FRS-100B",
        paper_dataset="Friendster-Synthetic (100B)",
        paper_vertices=984_125_490,
        paper_edges=106_557_960_965,
        vertices=98_413,
        edges=10_655_796,
        seed=45,
        builder=_build_rmat,
    ),
    "SLASHDOT-ZOO": DatasetSpec(
        name="SLASHDOT-ZOO",
        paper_dataset="Slashdot Zoo (KONECT)",
        paper_vertices=79_120,
        paper_edges=515_581,
        vertices=7_912,
        edges=51_558,
        seed=46,
        builder=_build_smallworld,
    ),
}

_MEMO: dict[tuple[str, float], EdgeList] = {}


def runtime_scale() -> float:
    """The global dataset scale factor from ``REPRO_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def load_dataset(name: str, scale: float | None = None) -> EdgeList:
    """Build (or fetch from the in-process cache) a registry dataset.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS` (case-insensitive).
    scale:
        Extra size multiplier; defaults to ``REPRO_SCALE``.
    """
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    if scale is None:
        scale = runtime_scale()
    memo_key = (key, float(scale))
    if memo_key not in _MEMO:
        spec = DATASETS[key]
        _MEMO[memo_key] = spec.builder(spec, float(scale))
    return _MEMO[memo_key]


def clear_cache() -> None:
    """Drop all memoised datasets (tests use this to bound memory)."""
    _MEMO.clear()


def dataset_table(scale: float | None = None, build: bool = False) -> list[dict]:
    """Rows reproducing Table 1: paper sizes next to analog sizes.

    With ``build=True`` the analogs are generated and their *actual* vertex /
    edge counts (after dedup/symmetrisation) reported; otherwise the target
    sizes are shown.
    """
    if scale is None:
        scale = runtime_scale()
    rows = []
    for spec in DATASETS.values():
        n, m = spec.scaled_sizes(scale)
        row = {
            "name": spec.name,
            "paper_dataset": spec.paper_dataset,
            "paper_vertices": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
            "analog_vertices": n,
            "analog_edges": m,
        }
        if build:
            el = load_dataset(spec.name, scale)
            row["analog_vertices"] = el.num_vertices
            row["analog_edges"] = el.num_edges
        rows.append(row)
    return rows
