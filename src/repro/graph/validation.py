"""Graph500-style result validation for traversal outputs.

The Graph500 benchmark validates each BFS run structurally rather than
against a reference (kernel 2 validation); this module ports that idea to
the k-hop setting so tests — and users — can check any engine's output
without a second implementation:

* the source has depth 0 and nothing else does;
* every edge spans at most one level: ``depth[v] <= depth[u] + 1`` whenever
  both endpoints were visited;
* every visited non-source vertex has a parent one level up;
* every unvisited vertex has no visited in-neighbour at depth ``< k``
  (i.e. the traversal did not stop early) — for full BFS, no visited
  in-neighbour at all.

:func:`validate_khop_depths` returns a list of human-readable violations
(empty = valid).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import build_csc
from repro.graph.edgelist import EdgeList

__all__ = ["validate_khop_depths", "assert_valid_khop"]


def validate_khop_depths(
    edges: EdgeList,
    source: int,
    depths: np.ndarray,
    k: int | None = None,
) -> list[str]:
    """Structural validation of one query's depth vector.

    ``depths[v]`` is the hop at which ``v`` was visited, ``-1`` for
    unvisited.  ``k`` is the hop budget (``None`` = full BFS).  Returns the
    list of violations found.
    """
    depths = np.asarray(depths)
    n = edges.num_vertices
    problems: list[str] = []
    if depths.shape != (n,):
        return [f"depth vector has shape {depths.shape}, expected ({n},)"]

    if depths[source] != 0:
        problems.append(f"source {source} has depth {depths[source]}, expected 0")
    zero_depth = np.nonzero(depths == 0)[0]
    if zero_depth.size != 1 or (zero_depth.size and zero_depth[0] != source):
        problems.append(f"vertices at depth 0: {zero_depth.tolist()}, expected [{source}]")

    visited = depths >= 0
    if k is not None and visited.any() and depths.max() > k:
        problems.append(f"max depth {int(depths.max())} exceeds budget k={k}")

    # edge condition: for u -> v with both visited, depth[v] <= depth[u] + 1
    du = depths[edges.src]
    dv = depths[edges.dst]
    both = (du >= 0) & (dv >= 0)
    bad = both & (dv > du + 1)
    if bad.any():
        i = int(np.nonzero(bad)[0][0])
        problems.append(
            f"edge {int(edges.src[i])}->{int(edges.dst[i])} spans levels "
            f"{int(du[i])}->{int(dv[i])}"
        )

    # parent condition: visited non-source vertices have an in-neighbour one
    # level up
    csc = build_csc(edges.src, edges.dst, n)
    for v in np.nonzero(visited)[0]:
        if v == source:
            continue
        preds = csc.neighbors(int(v))
        pd = depths[preds]
        if not ((pd >= 0) & (pd == depths[v] - 1)).any():
            problems.append(
                f"vertex {int(v)} at depth {int(depths[v])} has no parent at "
                f"depth {int(depths[v]) - 1}"
            )
            break  # one witness is enough

    # completeness: an unvisited vertex must not have a visited in-neighbour
    # with remaining budget
    frontier_cap = np.inf if k is None else k - 1
    unvisited = np.nonzero(~visited)[0]
    for v in unvisited:
        preds = csc.neighbors(int(v))
        pd = depths[preds]
        expandable = (pd >= 0) & (pd <= frontier_cap)
        if expandable.any():
            u = int(preds[np.nonzero(expandable)[0][0]])
            problems.append(
                f"vertex {int(v)} unvisited but in-neighbour {u} sits at depth "
                f"{int(depths[u])} with budget remaining"
            )
            break
    return problems


def assert_valid_khop(
    edges: EdgeList, source: int, depths: np.ndarray, k: int | None = None
) -> None:
    """Raise ``AssertionError`` listing violations, if any."""
    problems = validate_khop_depths(edges, source, depths, k)
    if problems:
        raise AssertionError("; ".join(problems))
