"""Range-based, edge-balanced graph partitioning (§3.1).

Vertices are assigned to ``p`` machines by contiguous id range; ranges are
chosen so each partition holds a similar number of edges ("to balance the
workload, we optimize each partition to contain a similar number of edges").
Each partition stores, for its local vertices:

* all **out-going** edges in CSR (and, blocked, as an
  :class:`~repro.graph.edgeset.EdgeSetMatrix`) — "assigning all out-going
  edges of a vertex to the same partition is a way of improving the
  efficiency of local graph traversals";
* all **incoming** edges in CSC — needed by gather-style algorithms
  (PageRank);
* the partition's slice of vertex properties.

*Local vertices* are those inside the range; *boundary vertices* (w.r.t. a
partition) are remote vertices adjacent to its local ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSR, build_csr
from repro.graph.edgelist import EdgeList
from repro.graph.edgeset import EdgeSetMatrix, degree_balanced_ranges

__all__ = [
    "Partition",
    "PartitionedGraph",
    "PullBlock",
    "PullIndex",
    "range_partition",
    "partition_with_bounds",
    "owner_of_bounds",
]


def owner_of_bounds(bounds: np.ndarray, v) -> np.ndarray | int:
    """Vectorised owner lookup against partition bounds alone.

    The pool workers route messages with only the bounds array (a shared
    view) in hand — no :class:`PartitionedGraph` exists worker-side.
    """
    return np.searchsorted(bounds, np.asarray(v), side="right") - 1


@dataclass
class PullBlock:
    """One source-range tile of a partition's local pull structure.

    Dense (pull-mode) traversal gathers frontier words from *sources* and
    reduces them onto target rows.  Tiling by source range keeps each
    tile's frontier reads inside a cache-resident window — the same LLC
    blocking idea the paper applies to edge-sets (§3.2), turned sideways
    for the gather direction.

    Edges are grouped by target row inside the tile: ``sources[starts[i]:
    starts[i+1]]`` are the local in-neighbours of target ``rows[i]``; the
    kernel reduces each run with one ``np.bitwise_or.reduceat`` call.
    Empty target rows are excluded, so the runs tile ``[0, len(sources))``
    exactly.
    """

    src_lo: int
    src_hi: int
    rows: np.ndarray = field(repr=False)
    starts: np.ndarray = field(repr=False)
    sources: np.ndarray = field(repr=False)

    @property
    def num_edges(self) -> int:
        return int(self.sources.size)

    def nbytes(self) -> int:
        return int(self.rows.nbytes + self.starts.nbytes + self.sources.nbytes)


@dataclass
class PullIndex:
    """Derived per-partition structures for dense (pull-mode) traversal.

    Built once from ``out_csr``/``in_csc`` and cached on the partition
    (deterministically, so pool workers rebuilding it after a restart get
    the same structure):

    * ``blocks`` — source-range tiles of the *local* in-edges (see
      :class:`PullBlock`);
    * ``remote_csr`` — the subset of ``out_csr`` whose destinations are
      remote, with per-row column order preserved, so pull mode emits the
      exact same outgoing message batches as push mode;
    * ``out_degree`` / ``local_out_degree`` — per-local-row totals used for
      canonical (push-equivalent) cost accounting and for the direction
      heuristic's frontier-edge mass.
    """

    blocks: list[PullBlock] = field(repr=False)
    remote_csr: CSR = field(repr=False)
    out_degree: np.ndarray = field(repr=False)
    local_out_degree: np.ndarray = field(repr=False)

    @property
    def num_local_edges(self) -> int:
        return int(sum(b.num_edges for b in self.blocks))

    def nbytes(self) -> int:
        total = self.remote_csr.nbytes()
        total += int(self.out_degree.nbytes + self.local_out_degree.nbytes)
        total += sum(b.nbytes() for b in self.blocks)
        return int(total)


@dataclass
class Partition:
    """One machine's subgraph shard.

    Attributes
    ----------
    part_id:
        Machine index in ``[0, p)``.
    lo, hi:
        The local vertex range ``[lo, hi)`` in global ids.
    out_csr:
        CSR over local rows (``hi - lo`` rows), columns are global ids.
    in_csc:
        CSC over local rows: row ``v - lo`` lists global in-neighbours of
        ``v``.
    edge_sets:
        Blocked form of ``out_csr`` (built lazily by
        :meth:`PartitionedGraph.build_edge_sets`).
    pull_cache:
        Lazily built :class:`PullIndex` (see :meth:`pull_index`).
    """

    part_id: int
    lo: int
    hi: int
    out_csr: CSR = field(repr=False)
    in_csc: CSR = field(repr=False)
    edge_sets: EdgeSetMatrix | None = field(default=None, repr=False)
    pull_cache: PullIndex | None = field(default=None, repr=False)

    @property
    def num_local(self) -> int:
        """Number of local vertices."""
        return self.hi - self.lo

    @property
    def num_out_edges(self) -> int:
        return self.out_csr.nnz

    def is_local(self, v) -> np.ndarray | bool:
        """Vectorised membership test for global vertex id(s)."""
        return (np.asarray(v) >= self.lo) & (np.asarray(v) < self.hi)

    def to_local(self, v):
        """Global id(s) -> local row offset(s). Caller ensures locality."""
        return np.asarray(v) - self.lo

    def boundary_vertices(self) -> np.ndarray:
        """Sorted global ids of remote vertices adjacent to this partition.

        These are the vertices whose values must cross the network — the
        quantity Figure 11's discussion says grows with machine count.
        """
        cols = self.out_csr.indices
        rows_in = self.in_csc.indices
        remote_out = cols[(cols < self.lo) | (cols >= self.hi)]
        remote_in = rows_in[(rows_in < self.lo) | (rows_in >= self.hi)]
        return np.unique(np.concatenate([remote_out, remote_in]))

    def pull_index(self, num_blocks: int = 8) -> PullIndex:
        """The partition's dense-traversal structures, built on first use.

        The build is a pure function of the partition's edges, so every
        process (in-process engine, pool workers, a worker restarted after
        a fault) derives an identical index.
        """
        if self.pull_cache is None:
            self.pull_cache = _build_pull_index(self, num_blocks)
        return self.pull_cache

    def nbytes(self) -> int:
        total = self.out_csr.nbytes() + self.in_csc.nbytes()
        if self.edge_sets is not None:
            total += self.edge_sets.nbytes()
        if self.pull_cache is not None:
            total += self.pull_cache.nbytes()
        return total


class PartitionedGraph:
    """A graph split into ``p`` contiguous, edge-balanced partitions.

    The object is the hand-off point between the graph substrate and the
    runtime: the runtime assigns one :class:`Partition` per simulated machine.
    """

    def __init__(self, edges: EdgeList, bounds: np.ndarray, partitions: list[Partition]):
        self.edges = edges
        self.bounds = np.asarray(bounds, dtype=np.int64)
        self.partitions = partitions

    # -- global structure ------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    @property
    def num_edges(self) -> int:
        return self.edges.num_edges

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def owner_of(self, v) -> np.ndarray | int:
        """Vectorised owner lookup: global id(s) -> partition id(s)."""
        return owner_of_bounds(self.bounds, v)

    def partition_of(self, v: int) -> Partition:
        """The :class:`Partition` owning global vertex ``v``."""
        return self.partitions[int(self.owner_of(v))]

    # -- optional blocked representation ---------------------------------- #

    def build_edge_sets(
        self, sets_per_partition: int = 8, consolidate_min_edges: int | None = None
    ) -> None:
        """Tile every partition's out-edges into edge-sets (§3.2).

        ``sets_per_partition`` controls the number of row/column stripes per
        partition (the paper's Figure 3 uses 8 per partition); with
        ``consolidate_min_edges`` set, tiny blocks are merged.
        """
        col_deg = self.edges.in_degrees()
        col_bounds = degree_balanced_ranges(col_deg, sets_per_partition)
        for part in self.partitions:
            local_deg = part.out_csr.degrees()
            row_bounds = degree_balanced_ranges(local_deg, sets_per_partition)
            src, dst, w = _csr_to_edges(part.out_csr)
            esm = EdgeSetMatrix(
                src,
                dst,
                part.num_local,
                self.num_vertices,
                row_bounds,
                col_bounds,
                weights=w,
            )
            if consolidate_min_edges is not None:
                esm = esm.consolidate(consolidate_min_edges)
            part.edge_sets = esm

    # -- stats ------------------------------------------------------------ #

    def edge_balance(self) -> float:
        """max/mean ratio of per-partition out-edge counts (1.0 = perfect)."""
        counts = np.array([p.num_out_edges for p in self.partitions], dtype=np.float64)
        mean = counts.mean() if counts.size else 0.0
        return float(counts.max() / mean) if mean > 0 else 1.0

    def total_boundary_vertices(self) -> int:
        """Sum over partitions of distinct boundary vertices (comm volume proxy)."""
        return int(sum(p.boundary_vertices().size for p in self.partitions))

    def nbytes(self) -> int:
        return int(sum(p.nbytes() for p in self.partitions))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"p={self.num_partitions})"
        )


def range_partition(edges: EdgeList, num_partitions: int) -> PartitionedGraph:
    """Partition ``edges`` into ``num_partitions`` contiguous vertex ranges.

    Ranges balance **out-edge count** (the dominant per-superstep work in
    traversals).  Every partition receives all out-edges of its local
    vertices (CSR) and all in-edges of its local vertices (CSC); an edge with
    both endpoints remote to a partition is stored elsewhere.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    n = edges.num_vertices
    bounds = degree_balanced_ranges(edges.out_degrees(), num_partitions)
    if bounds.size < num_partitions + 1:
        # More partitions than vertices: trailing partitions own empty ranges.
        pad = np.full(num_partitions + 1 - bounds.size, n, dtype=np.int64)
        bounds = np.concatenate([bounds, pad])
    return partition_with_bounds(edges, bounds)


def partition_with_bounds(edges: EdgeList, bounds: np.ndarray) -> PartitionedGraph:
    """Partition ``edges`` against a *fixed* set of range bounds.

    The dynamic-graph layer pins the bounds chosen for the initial graph
    and rebuilds oracle/compacted partitions against them, so shard
    contents stay comparable byte-for-byte across mutations (each CSR is a
    pure function of the per-row edge sets, independent of input order).
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    num_partitions = bounds.size - 1
    if num_partitions <= 0:
        raise ValueError("bounds must contain at least two entries")

    src, dst = edges.src, edges.dst
    w = edges.weight
    src_owner = np.searchsorted(bounds, src, side="right") - 1
    dst_owner = np.searchsorted(bounds, dst, side="right") - 1

    partitions: list[Partition] = []
    for pid in range(num_partitions):
        lo, hi = int(bounds[pid]), int(bounds[pid + 1])
        out_mask = src_owner == pid
        in_mask = dst_owner == pid
        out_csr = build_csr(
            src[out_mask] - lo,
            dst[out_mask],
            hi - lo,
            weights=None if w is None else w[out_mask],
        )
        # in_csc rows are local destinations; stored values are global sources.
        in_csc = build_csr(
            dst[in_mask] - lo,
            src[in_mask],
            hi - lo,
            weights=None if w is None else w[in_mask],
        )
        partitions.append(Partition(pid, lo, hi, out_csr, in_csc))
    return PartitionedGraph(edges, bounds, partitions)


def _csr_to_edges(csr: CSR) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    deg = csr.degrees()
    src = np.repeat(np.arange(csr.num_rows, dtype=np.int64), deg)
    return src, csr.indices.astype(np.int64), csr.weights


def _build_pull_index(part: Partition, num_blocks: int) -> PullIndex:
    n = part.num_local

    # Local in-edges, row-major by target (in_csc order), sources made local.
    in_deg = part.in_csc.degrees()
    targets = np.repeat(np.arange(n, dtype=np.int64), in_deg)
    srcs = part.in_csc.indices.astype(np.int64)
    local_mask = (srcs >= part.lo) & (srcs < part.hi)
    targets = targets[local_mask]
    local_src = srcs[local_mask] - part.lo

    # Tile by source range, balancing edges per tile so each gather window
    # touches a similar amount of frontier data.
    if local_src.size:
        per_src = np.bincount(local_src, minlength=n)
    else:
        per_src = np.zeros(n, dtype=np.int64)
    bounds = degree_balanced_ranges(per_src, num_blocks)
    blocks: list[PullBlock] = []
    for b in range(bounds.size - 1):
        blo, bhi = int(bounds[b]), int(bounds[b + 1])
        sel = (local_src >= blo) & (local_src < bhi)
        t = targets[sel]
        if t.size == 0:
            continue
        # Selection preserves target-major order, so each target's edges
        # stay contiguous; run starts come from consecutive differences.
        run_starts = np.concatenate(
            [[0], np.nonzero(np.diff(t))[0] + 1]
        ).astype(np.int64)
        blocks.append(PullBlock(blo, bhi, t[run_starts], run_starts, local_src[sel]))

    # Remote-destination subset of out_csr.  build_csr's counting sort with
    # column sorting reproduces out_csr's per-row (ascending) column order,
    # so routing over this CSR emits byte-identical message batches to push.
    out_deg = part.out_csr.degrees().astype(np.int64)
    cols = part.out_csr.indices.astype(np.int64)
    rows_rep = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    remote_mask = (cols < part.lo) | (cols >= part.hi)
    remote_csr = build_csr(rows_rep[remote_mask], cols[remote_mask], n)
    if remote_mask.any():
        remote_deg = np.bincount(rows_rep[remote_mask], minlength=n)
    else:
        remote_deg = np.zeros(n, dtype=np.int64)
    return PullIndex(
        blocks=blocks,
        remote_csr=remote_csr,
        out_degree=out_deg,
        local_out_degree=out_deg - remote_deg,
    )
