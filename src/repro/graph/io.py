"""Edge-list persistence: SNAP-style text and compact ``.npz`` binary.

The paper ingests SNAP edge lists (Orkut, Friendster).  These helpers provide
the same ingestion path for user-supplied graphs, plus a binary format for
fast reloads of generated analogs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["read_edge_list", "write_edge_list", "save_npz", "load_npz"]


def read_edge_list(path, comment: str = "#", weighted: bool = False) -> EdgeList:
    """Read a whitespace-separated ``src dst [weight]`` text file.

    Lines starting with ``comment`` are skipped (SNAP convention).  Vertex
    ids are densified to ``[0, n)`` preserving first-appearance order, the
    ingestion-time re-indexing of §3.1.
    """
    path = Path(path)
    cols = 3 if weighted else 2
    data = np.loadtxt(path, comments=comment, dtype=np.float64, ndmin=2)
    if data.size == 0:
        return EdgeList.empty(0)
    if data.shape[1] < cols:
        raise ValueError(f"expected {cols} columns, found {data.shape[1]}")
    raw_src = data[:, 0].astype(np.int64)
    raw_dst = data[:, 1].astype(np.int64)
    ids, inverse = np.unique(np.concatenate([raw_src, raw_dst]), return_inverse=True)
    m = raw_src.size
    src, dst = inverse[:m], inverse[m:]
    w = data[:, 2] if weighted else None
    return EdgeList(src, dst, ids.size, w)


def write_edge_list(edges: EdgeList, path) -> None:
    """Write ``src dst [weight]`` rows (no header), SNAP-compatible."""
    path = Path(path)
    if edges.weight is None:
        arr = np.stack([edges.src, edges.dst], axis=1)
        np.savetxt(path, arr, fmt="%d")
    else:
        with path.open("w") as fh:
            for s, d, w in zip(edges.src, edges.dst, edges.weight):
                fh.write(f"{int(s)} {int(d)} {float(w):g}\n")


def save_npz(edges: EdgeList, path) -> None:
    """Persist as compressed numpy arrays (fast reload of generated analogs)."""
    payload = {
        "src": edges.src,
        "dst": edges.dst,
        "num_vertices": np.int64(edges.num_vertices),
    }
    if edges.weight is not None:
        payload["weight"] = edges.weight
    np.savez_compressed(Path(path), **payload)


def load_npz(path) -> EdgeList:
    """Inverse of :func:`save_npz`."""
    with np.load(Path(path)) as data:
        w = data["weight"] if "weight" in data.files else None
        return EdgeList(data["src"], data["dst"], int(data["num_vertices"]), w)
