"""Edge-list container and ingestion-time preprocessing.

The paper's ingestion pipeline (§3.1) re-indexes vertex ids into a dense
``[0, n)`` range so that range-based partitioning can assign contiguous id
ranges to machines.  :class:`EdgeList` is the canonical in-memory form every
other representation (CSR/CSC, edge-sets, partitions) is built from.

All arrays are numpy; vertex ids are ``int32`` (sufficient for the scaled
datasets this reproduction uses — the registry checks the bound) and weights
are ``float64``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EdgeList"]

_VID_DTYPE = np.int32


@dataclass
class EdgeList:
    """A directed multigraph as parallel ``src``/``dst`` (and weight) arrays.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays of equal length, dtype ``int32``.
    num_vertices:
        Number of vertices ``n``; all ids must lie in ``[0, n)``.
    weight:
        Optional per-edge weights (``float64``).  ``None`` for unweighted
        graphs (the k-hop experiments); SSSP requires weights.
    """

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int
    weight: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=_VID_DTYPE)
        self.dst = np.ascontiguousarray(self.dst, dtype=_VID_DTYPE)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if self.weight is not None:
            self.weight = np.ascontiguousarray(self.weight, dtype=np.float64)
            if self.weight.shape != self.src.shape:
                raise ValueError("weight must match edge count")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if self.src.size:
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"vertex ids [{lo}, {hi}] out of range for n={self.num_vertices}"
                )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pairs(
        cls,
        pairs,
        num_vertices: int | None = None,
        weights=None,
    ) -> "EdgeList":
        """Build from an iterable of ``(src, dst)`` pairs.

        ``num_vertices`` defaults to ``max id + 1``.
        """
        pairs = list(pairs)
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        return cls(src, dst, num_vertices, w)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "EdgeList":
        """An edge-less graph on ``num_vertices`` vertices."""
        z = np.empty(0, dtype=_VID_DTYPE)
        return cls(z, z.copy(), num_vertices)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Number of directed edges (after any dedup applied)."""
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        return self.weight is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, shape ``(n,)`` int64."""
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, shape ``(n,)`` int64."""
        return np.bincount(self.dst, minlength=self.num_vertices).astype(np.int64)

    def total_degrees(self) -> np.ndarray:
        """``out_degree + in_degree`` per vertex."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def deduplicate(self) -> "EdgeList":
        """Drop parallel edges (keeping the first weight seen per pair)."""
        if self.num_edges == 0:
            return EdgeList(self.src, self.dst, self.num_vertices, self.weight)
        key = self.src.astype(np.int64) * self.num_vertices + self.dst
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        keep_sorted = np.empty(order.size, dtype=bool)
        keep_sorted[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=keep_sorted[1:])
        keep = order[keep_sorted]
        keep.sort()
        w = None if self.weight is None else self.weight[keep]
        return EdgeList(self.src[keep], self.dst[keep], self.num_vertices, w)

    def remove_self_loops(self) -> "EdgeList":
        """Drop ``v -> v`` edges."""
        keep = self.src != self.dst
        w = None if self.weight is None else self.weight[keep]
        return EdgeList(self.src[keep], self.dst[keep], self.num_vertices, w)

    def symmetrize(self) -> "EdgeList":
        """Add the reverse of every edge (then dedup).

        Social-network datasets in the paper (Orkut, Friendster) are
        undirected; SNAP ships them as symmetric edge lists.
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        w = None if self.weight is None else np.concatenate([self.weight] * 2)
        return EdgeList(src, dst, self.num_vertices, w).deduplicate()

    def reindex(self, order: str = "degree") -> tuple["EdgeList", np.ndarray]:
        """Re-index vertex ids densely, as done at ingestion (§3.1).

        Parameters
        ----------
        order:
            ``"degree"`` sorts vertices by descending total degree (hubs get
            small ids, which concentrates dense edge-sets in the top-left of
            the blocked adjacency matrix — the locality the paper exploits);
            ``"identity"`` keeps current ids.

        Returns
        -------
        (relabelled edge list, mapping) where ``mapping[old_id] == new_id``.
        """
        n = self.num_vertices
        if order == "identity":
            mapping = np.arange(n, dtype=_VID_DTYPE)
        elif order == "degree":
            deg = self.total_degrees()
            rank = np.argsort(-deg, kind="stable")
            mapping = np.empty(n, dtype=_VID_DTYPE)
            mapping[rank] = np.arange(n, dtype=_VID_DTYPE)
        else:
            raise ValueError(f"unknown reindex order: {order!r}")
        out = EdgeList(mapping[self.src], mapping[self.dst], n, self.weight)
        return out, mapping

    def with_unit_weights(self) -> "EdgeList":
        """Return a weighted copy with all weights ``1.0``."""
        return EdgeList(self.src, self.dst, self.num_vertices, np.ones(self.num_edges))

    # ------------------------------------------------------------------ #
    # interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (test oracle use only)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_vertices))
        if self.weight is None:
            g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        else:
            g.add_weighted_edges_from(
                zip(self.src.tolist(), self.dst.tolist(), self.weight.tolist())
            )
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = ", weighted" if self.is_weighted else ""
        return f"EdgeList(n={self.num_vertices}, m={self.num_edges}{w})"
