"""Graph substrate: storage formats, partitioning, generators and analysis.

This subpackage provides everything C-Graph's core engine sits on:

* :mod:`repro.graph.edgelist` — raw edge-list container with ingestion-time
  re-indexing (paper §3.1: "vertex ID ... is re-indexed during graph
  ingestion").
* :mod:`repro.graph.csr` — vectorised CSR/CSC construction (§3.2 multi-modal
  representation).
* :mod:`repro.graph.edgeset` — blocked *edge-set* representation with
  horizontal/vertical consolidation (§3.2).
* :mod:`repro.graph.partition` — range-based, edge-balanced partitioning
  (§3.1) producing :class:`~repro.graph.partition.PartitionedGraph`.
* :mod:`repro.graph.generators` — Graph500/RMAT Kronecker and classic
  synthetic generators used to build scaled analogs of the paper's datasets.
* :mod:`repro.graph.datasets` — the named dataset registry mirroring Table 1.
* :mod:`repro.graph.analysis` — hop plots and effective diameters (Figure 1).
* :mod:`repro.graph.properties` — vertex/edge property storage, including the
  level-limited store from §3.3.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSR, build_csr, build_csc
from repro.graph.edgeset import EdgeSet, EdgeSetMatrix, degree_balanced_ranges
from repro.graph.partition import (
    Partition,
    PartitionedGraph,
    partition_with_bounds,
    range_partition,
)
from repro.graph.generators import (
    rmat_edges,
    graph500_kronecker,
    erdos_renyi,
    watts_strogatz,
    barabasi_albert,
    star_graph,
    path_graph,
    grid_graph,
    complete_graph,
)
from repro.graph.datasets import DatasetSpec, DATASETS, load_dataset, dataset_table
from repro.graph.analysis import (
    hop_plot,
    effective_diameter,
    degree_statistics,
    degree_histogram,
    average_clustering,
    largest_connected_component_size,
)
from repro.graph.validation import validate_khop_depths, assert_valid_khop
from repro.graph.outofcore import SpillableEdgeSetStore
from repro.graph.properties import LevelLimitedValues, DenseVertexValues

__all__ = [
    "EdgeList",
    "CSR",
    "build_csr",
    "build_csc",
    "EdgeSet",
    "EdgeSetMatrix",
    "degree_balanced_ranges",
    "Partition",
    "PartitionedGraph",
    "range_partition",
    "partition_with_bounds",
    "rmat_edges",
    "graph500_kronecker",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "star_graph",
    "path_graph",
    "grid_graph",
    "complete_graph",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_table",
    "hop_plot",
    "effective_diameter",
    "degree_statistics",
    "degree_histogram",
    "average_clustering",
    "largest_connected_component_size",
    "validate_khop_depths",
    "assert_valid_khop",
    "SpillableEdgeSetStore",
    "LevelLimitedValues",
    "DenseVertexValues",
]
