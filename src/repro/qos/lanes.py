"""SLO lanes, per-tenant token buckets and deterministic weighted fair queueing.

A *lane* is an SLO class (``interactive``, ``bulk``, …): every submitted query
carries a lane, and the drain loop serves lanes in proportion to their
configured weights instead of strict arrival order.  A *tenant* is a billing
identity: each tenant may carry a token-bucket quota that bounds how fast its
queries become eligible on the **virtual** clock, so a misbehaving tenant is
throttled in simulated time without perturbing anyone else's answers.

All state here advances on the service's virtual clock only — given a fixed
arrival trace and configuration, every scheduling decision (lane picks, start
times, batch compositions) is a pure function of that trace, which is what
keeps QoS reports bit-identical across reruns and across the ``inproc`` and
``pool`` backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.frontier import MAX_BATCH_WIDTH

__all__ = [
    "INTERACTIVE_LANE",
    "BULK_LANE",
    "LaneSpec",
    "QuotaSpec",
    "QosConfig",
    "TokenBucket",
    "WeightedFairQueue",
    "default_lanes",
]

#: The default high-priority SLO class (point lookups, dashboards).
INTERACTIVE_LANE = "interactive"
#: The default low-priority SLO class (analytics sweeps, backfills).
BULK_LANE = "bulk"


@dataclass(frozen=True)
class LaneSpec:
    """One SLO class: its fair-queueing weight and optional batch-width cap.

    ``weight`` is the WFQ share — a lane with weight 4 receives 4x the
    virtual service of a weight-1 lane while both are backlogged.
    ``batch_width`` optionally caps how many queries of this lane may share
    one bit-parallel batch (``None`` inherits the service batch width); a
    small cap keeps an interactive lane's batches short and its latency low.
    """

    weight: float = 1.0
    batch_width: int | None = None

    def __post_init__(self) -> None:
        if not (self.weight > 0.0 and self.weight == self.weight):
            raise ValueError(f"lane weight must be positive, got {self.weight!r}")
        if self.batch_width is not None and not (
            1 <= int(self.batch_width) <= MAX_BATCH_WIDTH
        ):
            raise ValueError(
                f"lane batch_width must be in [1, {MAX_BATCH_WIDTH}], "
                f"got {self.batch_width!r}"
            )


@dataclass(frozen=True)
class QuotaSpec:
    """A tenant's token-bucket quota on the virtual clock.

    ``rate`` is tokens (queries) per virtual second; ``burst`` is the bucket
    capacity — how many queries may start back-to-back before the tenant is
    paced down to ``rate``.
    """

    rate: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        if not (self.rate > 0.0 and self.rate == self.rate):
            raise ValueError(f"quota rate must be positive, got {self.rate!r}")
        if not (self.burst >= 1.0):
            raise ValueError(f"quota burst must be >= 1, got {self.burst!r}")


def default_lanes() -> dict[str, LaneSpec]:
    """The stock two-class configuration: interactive 4:1 over bulk."""
    return {
        INTERACTIVE_LANE: LaneSpec(weight=4.0),
        BULK_LANE: LaneSpec(weight=1.0),
    }


@dataclass(frozen=True)
class QosConfig:
    """Complete QoS policy for one :class:`~repro.runtime.scheduler.QueryService`.

    ``lanes`` maps lane name to :class:`LaneSpec`; ``quotas`` maps tenant name
    to :class:`QuotaSpec` (tenants without an entry are unthrottled);
    ``default_lane`` is assigned to queries submitted without an explicit
    lane; ``affinity`` selects the batching policy — ``"partition"`` groups
    same-seed-partition queries into the same wide-BFS words,
    ``"none"`` fills batches in arrival order.
    """

    lanes: dict[str, LaneSpec] = field(default_factory=default_lanes)
    quotas: dict[str, QuotaSpec] = field(default_factory=dict)
    default_lane: str = INTERACTIVE_LANE
    affinity: str = "partition"

    def __post_init__(self) -> None:
        if not self.lanes:
            raise ValueError("QosConfig requires at least one lane")
        for name, spec in self.lanes.items():
            if not isinstance(spec, LaneSpec):
                raise TypeError(f"lane {name!r} must map to a LaneSpec")
        for name, spec in self.quotas.items():
            if not isinstance(spec, QuotaSpec):
                raise TypeError(f"tenant {name!r} must map to a QuotaSpec")
        if self.default_lane not in self.lanes:
            raise ValueError(
                f"default lane {self.default_lane!r} is not a configured lane"
            )
        if self.affinity not in ("partition", "none"):
            raise ValueError(
                f"affinity must be 'partition' or 'none', got {self.affinity!r}"
            )

    @classmethod
    def from_cli(
        cls,
        lanes: str | None = None,
        quotas: list[str] | None = None,
        default_lane: str | None = None,
        affinity: str = "partition",
    ) -> QosConfig:
        """Parse CLI syntax: ``--lanes 'interactive=8,bulk=1:32'`` and
        repeated ``--tenant-quota 'crawler=2000:4'`` (rate[:burst])."""
        lane_map = default_lanes() if not lanes else {}
        for part in (lanes or "").split(","):
            part = part.strip()
            if not part:
                continue
            name, _, rest = part.partition("=")
            if not name or not rest:
                raise ValueError(f"bad lane spec {part!r}; expected name=weight[:width]")
            weight, _, width = rest.partition(":")
            lane_map[name] = LaneSpec(
                weight=float(weight), batch_width=int(width) if width else None
            )
        quota_map: dict[str, QuotaSpec] = {}
        for part in quotas or []:
            name, _, rest = part.partition("=")
            if not name or not rest:
                raise ValueError(
                    f"bad quota spec {part!r}; expected tenant=rate[:burst]"
                )
            rate, _, burst = rest.partition(":")
            quota_map[name] = QuotaSpec(
                rate=float(rate), burst=float(burst) if burst else 1.0
            )
        if default_lane is None:
            default_lane = (
                INTERACTIVE_LANE if INTERACTIVE_LANE in lane_map
                else sorted(lane_map)[0]
            )
        return cls(
            lanes=lane_map,
            quotas=quota_map,
            default_lane=default_lane,
            affinity=affinity,
        )


class TokenBucket:
    """Deterministic token bucket refilled by the *virtual* clock.

    The drain loop evaluates eligibility at whatever virtual instant it is
    considering, which is not always monotone across call sites (the index
    lane starts queries at their arrival while the traversal loop runs on the
    batch clock), so refills clamp negative elapsed time to zero — time never
    flows backwards out of the bucket.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, spec: QuotaSpec):
        self.rate = float(spec.rate)
        self.burst = float(spec.burst)
        self.tokens = float(spec.burst)
        self.updated = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.updated = now

    def ready_time(self, now: float) -> float:
        """Earliest virtual time >= ``now`` at which one token is available."""
        self._refill(now)
        if self.tokens >= 1.0:
            return now
        return now + (1.0 - self.tokens) / self.rate

    def take(self, now: float) -> None:
        """Consume one token at virtual time ``now``."""
        self._refill(now)
        self.tokens -= 1.0


class WeightedFairQueue:
    """Start-time-free WFQ over lanes with deterministic tie-breaking.

    Each lane accumulates *normalised virtual service*: after a batch of
    virtual duration ``T`` is dispatched from lane ``L``, ``vtime[L] += T /
    weight(L)``.  The next dispatch goes to the backlogged lane with the
    smallest counter (ties broken by lane name), so while several lanes are
    backlogged their served virtual time converges to the weight ratio.
    Lanes that go idle are caught up to the minimum backlogged counter when
    they return, so an idle lane cannot bank unbounded credit and starve the
    others on re-entry.
    """

    def __init__(self, lanes: dict[str, LaneSpec]):
        self.lanes = dict(lanes)
        self.vtime: dict[str, float] = {name: 0.0 for name in self.lanes}

    def pick(self, backlogged: list[str]) -> str:
        """The backlogged lane to serve next; advances idle lanes' counters."""
        if not backlogged:
            raise ValueError("no backlogged lanes to pick from")
        for name in backlogged:
            if name not in self.lanes:
                raise KeyError(f"unknown lane {name!r}")
        floor = min(self.vtime[name] for name in backlogged)
        for name in self.lanes:
            if name not in backlogged and self.vtime[name] < floor:
                self.vtime[name] = floor
        return min(backlogged, key=lambda name: (self.vtime[name], name))

    def charge(self, lane: str, virtual_seconds: float) -> None:
        """Account a dispatched batch's virtual duration to its lane."""
        self.vtime[lane] += float(virtual_seconds) / self.lanes[lane].weight
