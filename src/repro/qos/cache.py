"""Bounded LRU result cache for repeated point-reach queries.

Entries are keyed on ``(source, target, k, graph_epoch)``: a verdict is only
ever replayed for the exact graph version it was computed against, so the
cache can never serve a stale answer — the mutation lane's epoch advance
makes every older entry unreachable, and :meth:`ResultCache.on_epoch` sweeps
them out eagerly so capacity is not wasted on dead epochs.

A hit is charged ``hit_seconds`` on the virtual clock (one vertex-update
under the calibrated cost model — a hash probe, set by the service at wiring
time), versus the index lane's per-query label merge; the wall-clock path is
a dict probe versus the planner's vectorised label scan.  ``cross_check``
mode re-executes every hit against the live planner and raises on any
mismatch — the paranoid mode the staleness gate in
``benchmarks/test_qos_isolation.py`` runs under.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU map ``(source, target, k, epoch) -> reachable verdict``."""

    def __init__(
        self,
        capacity: int = 4096,
        hit_seconds: float | None = None,
        cross_check: bool = False,
    ):
        if int(capacity) < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: Virtual seconds charged per hit; the service fills this in from
        #: its session's cost model when left ``None``.
        self.hit_seconds = None if hit_seconds is None else float(hit_seconds)
        self.cross_check = bool(cross_check)
        self._entries: OrderedDict[tuple[int, int, int, int], bool] = OrderedDict()
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups so far; 0.0 before any lookup (NaN-free)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def on_epoch(self, epoch: int) -> int:
        """Note a graph-epoch advance; drop entries from older epochs.

        Returns the number of entries invalidated.  Idempotent and cheap when
        the epoch has not moved (the common case — one comparison).
        """
        epoch = int(epoch)
        if epoch <= self._epoch:
            return 0
        self._epoch = epoch
        stale = [key for key in self._entries if key[3] < epoch]
        for key in stale:
            del self._entries[key]
        self.invalidated += len(stale)
        return len(stale)

    def lookup(self, source: int, target: int, k: int, epoch: int) -> bool | None:
        """The cached verdict, refreshed to most-recently-used, or ``None``."""
        key = (int(source), int(target), -1 if k is None else int(k), int(epoch))
        verdict = self._entries.get(key)
        if verdict is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return verdict

    def store(self, source: int, target: int, k: int, epoch: int, verdict: bool) -> None:
        """Insert (or refresh) a verdict, evicting the LRU entry when full."""
        key = (int(source), int(target), -1 if k is None else int(k), int(epoch))
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = bool(verdict)

    # -- batch interface (the service's index-lane hot path) ---------------- #

    def lookup_many(
        self, sources: np.ndarray, targets: np.ndarray, k: int, epoch: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe a whole point-query group at once.

        Returns ``(verdicts, hit_mask)`` — ``verdicts[i]`` is only meaningful
        where ``hit_mask[i]``.  This is exactly the loop the service's index
        lane runs per group, exposed so benchmarks time the real hit path.
        """
        srcs = np.asarray(sources).tolist()
        tgts = np.asarray(targets).tolist()
        n = len(srcs)
        k = int(k) if k is not None else -1
        epoch = int(epoch)
        verdicts = np.zeros(n, dtype=bool)
        hit_mask = np.zeros(n, dtype=bool)
        # Bound locals on the probe loop: this is the service's per-group
        # hit path, and a warm cache runs it once per query served.
        entries = self._entries
        get = entries.get
        move_to_end = entries.move_to_end
        hits = 0
        for i in range(n):
            key = (srcs[i], tgts[i], k, epoch)
            verdict = get(key)
            if verdict is not None:
                move_to_end(key)
                hit_mask[i] = True
                verdicts[i] = verdict
                hits += 1
        self.hits += hits
        self.misses += n - hits
        return verdicts, hit_mask

    def store_many(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        k: int,
        epoch: int,
        verdicts: np.ndarray,
    ) -> None:
        """Insert a whole group of fresh verdicts (index-lane miss path)."""
        for i in range(int(len(sources))):
            self.store(sources[i], targets[i], k, epoch, verdicts[i])

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"hit_ratio={self.hit_ratio:.3f}, evictions={self.evictions}, "
            f"invalidated={self.invalidated}, epoch={self._epoch})"
        )
