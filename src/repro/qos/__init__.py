"""Quality-of-service layer: SLO lanes, tenant quotas, locality, result cache.

The QoS subsystem sits between :class:`repro.runtime.scheduler.QueryService`
admission and the traversal/index kernels:

* :mod:`repro.qos.lanes` — SLO classes (``interactive`` vs ``bulk``),
  per-tenant token-bucket quotas on the virtual clock, and a deterministic
  weighted fair queue that replaces the FIFO drain order;
* :mod:`repro.qos.locality` — seed-partition-affinity batching that groups
  concurrent queries whose seeds share partitions into the same wide-BFS
  words;
* :mod:`repro.qos.cache` — a bounded LRU result cache for repeated
  point-reach queries keyed on ``(source, target, k, graph_epoch)`` and
  invalidated by the mutation lane's epoch advance.

Everything here is pure scheduling policy: answers stay bit-identical to the
FIFO drain (verdicts depend only on the graph epoch, never on batch
composition) and every decision is a deterministic function of the submitted
trace, so reports reproduce bit-identically across reruns and backends.
"""

from repro.qos.cache import ResultCache
from repro.qos.lanes import (
    BULK_LANE,
    INTERACTIVE_LANE,
    LaneSpec,
    QosConfig,
    QuotaSpec,
    TokenBucket,
    WeightedFairQueue,
    default_lanes,
)
from repro.qos.locality import (
    affinity_select,
    locality_score,
    partition_query_masks,
)

__all__ = [
    "BULK_LANE",
    "INTERACTIVE_LANE",
    "LaneSpec",
    "QosConfig",
    "QuotaSpec",
    "ResultCache",
    "TokenBucket",
    "WeightedFairQueue",
    "affinity_select",
    "default_lanes",
    "locality_score",
    "partition_query_masks",
]
