"""Seed-partition-affinity batching for concurrent bit-parallel queries.

The wide-BFS kernels share one pass over each partition's edges across every
query in a batch, so a batch whose seeds cluster in few partitions touches
fewer partitions per superstep and ships fewer inter-machine message words.
This module picks *which* pending queries share a batch: take the oldest
pending query as the anchor, pull in every other candidate whose seed lives
in the anchor's partition, then fill the remaining width in arrival order.

Selection is a pure function of the candidate order and their seed owners —
no clocks, no randomness — so affinity batching preserves the service's
bit-identical determinism guarantees.  The per-partition query-mask planes
(:func:`partition_query_masks`) are built with the same word layout as
:class:`repro.core.frontier.BitFrontier` query masks, so a batch's locality
structure can be inspected (or charged to telemetry) in the frontier's own
vocabulary.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import query_mask_for, words_for

__all__ = [
    "affinity_select",
    "partition_query_masks",
    "locality_score",
]


def affinity_select(owners: np.ndarray, width: int) -> np.ndarray:
    """Indices of the next batch among ``owners``-ordered candidates.

    ``owners[i]`` is the partition that owns candidate ``i``'s seed, with
    candidates already sorted by drain order (arrival, query id).  Returns
    sorted positions: candidate 0 (the anchor) plus same-partition candidates
    first, then earliest-arriving others, at most ``width`` total.
    """
    owners = np.asarray(owners, dtype=np.int64)
    width = int(width)
    if width < 1:
        raise ValueError(f"batch width must be >= 1, got {width}")
    if owners.size == 0:
        return np.empty(0, dtype=np.int64)
    same = np.nonzero(owners == owners[0])[0]
    if same.size >= width:
        return same[:width]
    others = np.nonzero(owners != owners[0])[0]
    return np.sort(np.concatenate([same, others[: width - same.size]]))


def partition_query_masks(
    owners: np.ndarray, num_partitions: int, num_queries: int | None = None
) -> np.ndarray:
    """Per-partition BitFrontier-style query-mask planes for one batch.

    Returns a ``(num_partitions, words)`` uint64 array whose row ``p`` has
    query bit ``q`` set iff partition ``p`` owns query ``q``'s seed — the
    seed plane each partition ORs into its level-0 frontier, and the shape
    telemetry uses to report batch locality.
    """
    owners = np.asarray(owners, dtype=np.int64)
    if num_queries is None:
        num_queries = int(owners.size)
    if owners.size > num_queries:
        raise ValueError(
            f"{owners.size} owners do not fit a batch of {num_queries}"
        )
    if owners.size and not (0 <= owners.min() and owners.max() < num_partitions):
        raise ValueError("seed owner out of partition range")
    masks = np.zeros((int(num_partitions), words_for(num_queries)), dtype=np.uint64)
    for p in np.unique(owners):
        masks[p] = query_mask_for(np.nonzero(owners == p)[0], num_queries)
    return masks


def locality_score(owners: np.ndarray) -> float:
    """Fraction of a batch's seeds owned by its most popular partition.

    1.0 means the whole batch seeds in one partition (perfect affinity);
    ``1 / num_partitions`` is the expectation for random placement.
    """
    owners = np.asarray(owners, dtype=np.int64)
    if owners.size == 0:
        return 0.0
    return float(np.bincount(owners).max()) / float(owners.size)
