"""Micro-benchmarks of the engine's hot kernels (multi-round, wall clock).

Not paper figures — these guard the performance-critical primitives against
regressions: CSR construction, frontier expansion, bitwise combining and the
PageRank gather.
"""

import numpy as np
import pytest

from repro.core.frontier import BitFrontier, popcount
from repro.core.khop import concurrent_khop
from repro.core.pagerank import pagerank
from repro.graph import build_csr, range_partition, rmat_edges
from repro.runtime.message import MessageBatch, combine_or


@pytest.fixture(scope="module")
def kernel_graph():
    return rmat_edges(14, 200_000, seed=3).remove_self_loops().deduplicate()


def test_kernel_csr_build(benchmark, kernel_graph):
    el = kernel_graph
    csr = benchmark(build_csr, el.src, el.dst, el.num_vertices)
    assert csr.nnz == el.num_edges


def test_kernel_partition(benchmark, kernel_graph):
    pg = benchmark(range_partition, kernel_graph, 8)
    assert pg.num_partitions == 8


def test_kernel_single_khop(benchmark, kernel_graph):
    pg = range_partition(kernel_graph, 1)
    res = benchmark(concurrent_khop, pg, [0], 3)
    assert res.reached[0] > 0


def test_kernel_batch64_khop(benchmark, kernel_graph):
    pg = range_partition(kernel_graph, 1)
    sources = list(range(64))
    res = benchmark(concurrent_khop, pg, sources, 3)
    assert res.num_queries == 64


def test_kernel_combine_or(benchmark):
    rng = np.random.default_rng(0)
    batch = MessageBatch(
        rng.integers(0, 10_000, size=200_000),
        rng.integers(0, 2**63, size=200_000).astype(np.uint64),
    )
    out = benchmark(combine_or, batch)
    assert out.num_tasks <= 10_000


def test_kernel_popcount(benchmark):
    rng = np.random.default_rng(1)
    words = rng.integers(0, 2**63, size=1_000_000).astype(np.uint64)
    counts = benchmark(popcount, words)
    assert counts.max() <= 64


def test_kernel_frontier_promote(benchmark):
    state = BitFrontier(500_000, 64)
    rng = np.random.default_rng(2)
    verts = rng.integers(0, 500_000, size=100_000)
    bits = rng.integers(0, 2**63, size=100_000).astype(np.uint64)

    def step():
        state.or_into_next(verts, bits)
        return state.promote()

    benchmark(step)


def test_kernel_pagerank_iteration(benchmark, kernel_graph):
    pg = range_partition(kernel_graph, 4)
    run = benchmark.pedantic(
        pagerank, args=(pg,), kwargs={"iterations": 2, "num_machines": 4},
        rounds=3, iterations=1,
    )
    assert run.iterations == 2


def test_kernel_wide_batch_512(benchmark, kernel_graph):
    from repro.core.wide import concurrent_khop_wide

    pg = range_partition(kernel_graph, 1)
    sources = [i % kernel_graph.num_vertices for i in range(512)]
    res = benchmark.pedantic(
        concurrent_khop_wide, args=(pg, sources, 3), rounds=3, iterations=1
    )
    assert res.num_queries == 512


def test_kernel_reachability_batch(benchmark, kernel_graph):
    from repro.core.reachability import reachability_queries

    pg = range_partition(kernel_graph, 2)
    rng = np.random.default_rng(7)
    src = rng.integers(0, kernel_graph.num_vertices, 32)
    dst = rng.integers(0, kernel_graph.num_vertices, 32)
    res = benchmark.pedantic(
        reachability_queries, args=(pg, src, dst, 3), rounds=3, iterations=1
    )
    assert res.num_queries == 32


def test_kernel_multi_sssp(benchmark, kernel_graph):
    from repro.core.multi_sssp import concurrent_sssp
    from repro.graph import EdgeList

    rng = np.random.default_rng(8)
    w = EdgeList(kernel_graph.src, kernel_graph.dst,
                 kernel_graph.num_vertices,
                 rng.uniform(0.5, 2.0, kernel_graph.num_edges))
    pg = range_partition(w, 2)
    res = benchmark.pedantic(
        concurrent_sssp, args=(pg, list(range(16))), rounds=3, iterations=1
    )
    assert res.num_queries == 16


def test_kernel_kcore(benchmark, kernel_graph):
    from repro.core.kcore import core_numbers

    res = benchmark.pedantic(
        core_numbers, args=(kernel_graph,), kwargs={"num_machines": 2},
        rounds=1, iterations=1,
    )
    assert res.core.max() > 0


def test_kernel_triangles(benchmark, kernel_graph):
    from repro.core.triangles import triangle_count

    count = benchmark.pedantic(
        triangle_count, args=(kernel_graph,), rounds=3, iterations=1
    )
    assert count >= 0
