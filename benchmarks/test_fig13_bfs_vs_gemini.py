"""Figure 13: concurrent full BFS vs Gemini (1/64/128/256 queries, FR, 3 machines).

Paper: Gemini's total time is linear in the query count (serialized);
C-Graph with bit operations grows sublinearly, winning 1.7x at 64/128 and
2.4x at 256 concurrent BFS.

The analog reproduces the linear-vs-sublinear split and the crossover, but
over-states the ratio: the FR analog's diameter is ~6 (vs the real
Friendster's 32), so concurrent frontiers align level-by-level and the
bit-parallel batch shares almost all edge passes (see EXPERIMENTS.md).
"""

import numpy as np
from conftest import run_once

from repro.bench import experiments as E


def test_fig13_bfs_vs_gemini(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig13_bfs_vs_gemini,
        counts=(1, 64, 128, 256),
        scale=bench_scale,
    )
    print()
    print(res.report())
    counts = np.asarray(res.counts, dtype=np.float64)
    gem = res.gemini_total
    cg = res.cgraph_total
    # both start from the same single-BFS performance (paper: ~0.5 s each)
    assert gem[0] == cg[0]
    # Gemini is linear in the query count
    slope = gem[1:] / counts[1:]
    assert np.allclose(slope, slope[0], rtol=0.35)
    # C-Graph is sublinear in the *query* count: serving 256 queries costs
    # a small fraction of 256 single-query runs (bit-parallel sharing);
    # across full batches the growth is linear in the batch count, as the
    # word width caps sharing at 64 queries per pass.
    assert cg[3] < 0.25 * counts[3] * cg[0]
    assert cg[1] < 0.25 * counts[1] * cg[0]
    # and C-Graph wins at every concurrent count > 1
    assert (res.ratios()[1:] > 1.0).all()
