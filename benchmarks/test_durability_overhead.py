"""Durability: the WAL tax on mutation throughput, and the recovery payback.

The ``durability_overhead`` driver applies one effective mutation stream
to three twin dynamic sessions — WAL off, WAL on with group commit
(``fsync=batch``, the service lane's policy), WAL on with an fsync per
append — then times restoring the durable twin (newest checkpoint + WAL
suffix replay) against the WAL-less alternative (rebuild the session and
index from the original edge list and re-apply every batch).  Exactness
is asserted inside the driver — the recovered session's epoch, edge set
and index answers are bit-identical to the uninterrupted twin's — before
any gate is evaluated.  A reference run is exported to
``BENCH_durability.json`` at repo root.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_durability_overhead(benchmark, bench_scale, tmp_path):
    res = run_once(benchmark, E.durability_overhead, scale=bench_scale)
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 6
    out = export_result(res, tmp_path / "durability.json")
    assert out.exists()

    # The timed recovery must have exercised both halves of the restore
    # path: a committed checkpoint and a non-empty WAL suffix.
    assert res.checkpoint_epoch > 0
    assert res.replayed_records == res.suffix_batches

    # Gate 1 — the WAL tax: group-commit batch fsync keeps mutation
    # throughput within 0.8x of running with no WAL at all.  Measured
    # reference: 0.92-1.1x across scales (the WAL writes ~5 KB and a
    # handful of fsyncs per stream; incremental index maintenance
    # dominates every batch).
    assert res.batch_relative_throughput >= 0.8, (
        f"WAL-on (batch fsync) {res.wal_batch_wall_s:.4f} s vs WAL-off "
        f"{res.wal_off_wall_s:.4f} s: relative throughput "
        f"{res.batch_relative_throughput:.2f}x < 0.8x"
    )

    # Gate 2 — the recovery payback: checkpoint + suffix replay beats
    # rebuild-from-scratch.  Measured reference: ~13x at scale 0.25 (the
    # CI regime: checkpoint load dominates and is nearly free), ~5.3x at
    # scale 0.5, ~2.5-7x at full scale — the replayed suffix batches are
    # the latest, most label-dense ones, so the per-batch patch cost
    # grows with scale on both sides and the suffix/total ratio caps the
    # win.  Floors leave headroom for runner noise.
    floor = 5.0 if bench_scale <= 0.3 else 2.0
    assert res.recovery_speedup >= floor, (
        f"recover {res.recovery_wall_s:.4f} s vs rebuild "
        f"{res.rebuild_wall_s:.4f} s: speedup "
        f"{res.recovery_speedup:.2f}x < {floor}x"
    )
