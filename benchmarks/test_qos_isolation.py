"""QoS layer: SLO isolation under weighted-fair lanes and the result cache.

The ``qos_isolation`` driver runs the subsystem's two headline claims on
one trace:

* **Isolation** — a saturating bulk-tenant backlog plus interactive
  queries arriving mid-drain, FIFO vs weighted-fair lanes on twin
  sessions.  Correctness is asserted inside the driver (verdicts
  bit-identical between the two disciplines) before any gate; the claim
  is interactive p99, won by reordering rather than by shedding bulk
  work (throughput stays near parity).
* **Result cache** — the cache hit path (``lookup_many``) against the
  index lane it short-circuits (``planner.answer``) on the same wave,
  wall clock, plus the staleness sweep: epoch advances invalidate, every
  replayed hit is cross-checked against the live index, and verdicts are
  asserted against a from-scratch traversal at each epoch.

A reference run is exported to ``BENCH_qos_isolation.json`` at repo root.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_qos_isolation(benchmark, bench_scale, tmp_path):
    res = run_once(benchmark, E.qos_isolation, scale=bench_scale)
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 4
    out = export_result(res, tmp_path / "qos_isolation.json")
    assert out.exists()

    # The SLO claim: under a saturating bulk backlog, weighted-fair lanes
    # cut interactive p99 by >= 3x over the FIFO drain.  Measured
    # reference: ~23x at full scale, ~5.8x at scale 0.25 (fewer bulk
    # batches shrink the FIFO queueing the speedup is made of); gates
    # leave headroom for runner noise.  Answers are asserted bit-identical
    # inside the driver, so the speedup cannot come from wrong verdicts.
    floor = 3.0
    assert res.isolation_speedup >= floor, (
        f"interactive p99 {res.fifo_interactive_p99:.6f} s FIFO vs "
        f"{res.qos_interactive_p99:.6f} s WFQ: speedup "
        f"{res.isolation_speedup:.2f}x < {floor}x"
    )

    # ... at near-equal throughput: the virtual clock may only stretch by
    # the fixed superstep cost of dispatching interactive queries promptly
    # (small batches) instead of packing them behind the backlog.
    assert res.throughput_ratio >= 0.75, (
        f"QoS drain stretched the clock: {res.qos_clock:.6f} s vs FIFO "
        f"{res.fifo_clock:.6f} s (ratio {res.throughput_ratio:.2f} < 0.75)"
    )

    # The cache claim: a warm hit is >= 5x cheaper than the index lane it
    # replaces.  Measured reference: ~10x at both scales.
    assert res.cache_speedup >= 5.0, (
        f"index lane {res.index_wall_s:.6f} s vs cache "
        f"{res.cache_wall_s:.6f} s for {res.cache_queries} queries: "
        f"speedup {res.cache_speedup:.2f}x < 5x"
    )

    # The staleness sweep ran for real: every epoch advance invalidated
    # cached verdicts, and the cross-checked replay served zero stale
    # answers (the driver raises otherwise).
    assert res.epochs_crossed >= 3
    assert res.cache_invalidated > 0
