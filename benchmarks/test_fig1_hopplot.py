"""Figure 1: hop plot of the Slashdot-Zoo analog.

Paper: diameter 12, delta_0.5 = 3.51, delta_0.9 = 4.71 — "most of the
network will be visited with less than 5 hops".
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig1_hop_plot(benchmark, bench_scale):
    res = run_once(benchmark, E.fig1_hop_plot, scale=bench_scale, num_sources=300)
    print()
    print(res.report())
    # the small-world shape: 90% of pairs within a handful of hops
    assert res.d50 < res.d90 <= res.diameter
    assert res.d90 < 8.0
    # and the CDF is a proper distribution
    assert abs(res.cdf[-1] - 1.0) < 1e-9
