"""Index vs traversal: point reachability via labels vs bit-parallel BFS.

The reachability index exists for one workload shape: many point
``reach(s, t, k)`` queries against one resident graph.  This benchmark
answers the same 256-pair workload on the OR-100M analog both ways — the
traversal engine's best configuration (word-wide early-terminating
batches) versus one vectorised label intersection — and asserts the
verdicts are bit-identical, so the speedup is pure index, not a
different computation.  The one-time build cost is reported separately
and never folded into the per-query numbers.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_index_vs_traversal(benchmark, bench_scale, tmp_path):
    res = run_once(
        benchmark,
        E.index_vs_traversal,
        dataset="OR-100M",
        num_pairs=256,
        k=3,
        num_machines=3,
        scale=bench_scale,
    )
    print()
    print(res.report())

    # the strategy table exports like every other experiment result
    rows = result_rows(res)
    assert len(rows) == 3
    out = export_result(res, tmp_path / "index_vs_traversal.csv")
    assert out.exists()

    # the driver itself asserts verdict equality; here we pin the headline:
    # answering the workload from the index must be >= 5x faster than the
    # traversal engine, excluding the one-time build
    assert res.speedup >= 5.0, (
        f"index speedup {res.speedup:.2f}x < 5x "
        f"(traversal {res.traversal_answer_s:.4f} s, "
        f"index {res.index_answer_s:.4f} s)"
    )
    # the virtual-time (cost-model) gap must agree in direction
    assert res.index_virtual_s < res.traversal_virtual_s
