"""Figure 10: PageRank multi-machine scalability (10 iterations, 1-9 machines).

Paper: FR-1B speedups 1.8x / 2.4x / 2.9x at 3/6/9 machines; OR-100M stops
scaling beyond ~6 machines as communication dominates; FRS-72B scales best
(4.5x at 9 machines).
"""

import numpy as np
from conftest import run_once

from repro.bench import experiments as E


def test_fig10_pagerank_scaling(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig10_pagerank_scaling,
        machines=(1, 2, 3, 4, 5, 6, 7, 8, 9),
        scale=bench_scale,
    )
    print()
    print(res.report())
    fr = res.normalized["FR-1B"]
    or_ = res.normalized["OR-100M"]
    frs = res.normalized["FRS-72B"]
    machines = np.asarray(res.machines)

    def at(series, p):
        return float(series[machines.tolist().index(p)])

    # FR-1B: meaningful but sub-linear speedup (paper: 1.8x at p=3)
    assert at(fr, 3) < 0.75
    assert at(fr, 9) < at(fr, 3)
    assert at(fr, 9) > 1 / 9  # far from linear, as in the paper
    # FRS-72B (largest) scales best at p=9; OR-100M (smallest) worst
    assert at(frs, 9) < at(fr, 9) < at(or_, 9)
    # OR-100M flattens past 6 machines: its 6->9 relative gain is the
    # smallest of the three datasets (paper: "scalability becomes poor
    # beyond 6 machines" on the smallest graph)
    def gain_6_to_9(series):
        return at(series, 6) / at(series, 9)

    assert gain_6_to_9(or_) < gain_6_to_9(fr) < gain_6_to_9(frs)
