"""Direction optimization: adaptive push-pull vs always-push traversal.

The dense-pull kernel exists so that the few mid-traversal supersteps
where the frontier covers most of the graph — which dominate full-BFS
drain time — run as cache-blocked segmented ORs over the local CSC
instead of scattered per-edge pushes.  This benchmark drains one
64-query batch to fixpoint under auto / forced-push / forced-pull on a
persistent session (bit-identical answers, per-step virtual times and
total virtual clocks asserted inside the driver, on both backends) and
gates auto's wall-clock win over always-push on the dense drain, plus a
no-regression bound on a 1-hop sparse drain where auto must stay in
push mode.  A reference run is exported to ``BENCH_push_pull.json`` at
repo root.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_push_pull(benchmark, bench_scale, tmp_path):
    res = run_once(benchmark, E.push_pull, repeats=3, scale=bench_scale)
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 2
    out = export_result(res, tmp_path / "push_pull.json")
    assert out.exists()

    # Auto must actually engage the pull kernel on the dense supersteps
    # and stay in push mode on the sparse drain.
    assert res.dense_auto_pull_steps > 0
    assert res.sparse_pull_steps == 0

    # The performance claims.  Measured reference: ~1.2x dense speedup at
    # both full scale and REPRO_BENCH_SCALE=0.25; gate leaves headroom
    # for runner noise.  Sparse drains are sub-millisecond, so the
    # no-regression bound carries an absolute noise floor.
    assert res.dense_speedup >= 1.05, (
        f"auto {res.dense_auto_wall_s:.4f} s vs push "
        f"{res.dense_push_wall_s:.4f} s: speedup {res.dense_speedup:.2f}x < 1.05x"
    )
    assert res.sparse_auto_wall_s <= 1.5 * res.sparse_push_wall_s + 0.005, (
        f"sparse regression: auto {res.sparse_auto_wall_s:.4f} s vs push "
        f"{res.sparse_push_wall_s:.4f} s"
    )
