"""Figure 8: response-time distributions vs Titan (a) and Gemini (b).

Paper: (a) Titan mean 8.6 s vs C-Graph 0.25 s over 1000 traversals on the
Orkut graph, single machine; (b) Gemini mean 4.25 s (serialized backlog) vs
C-Graph 0.3 s on Friendster with 3 machines.
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig8a_vs_titan(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig8a_distribution_vs_titan,
        num_queries=100,
        roots_per_query=10,
        scale=bench_scale,
    )
    print()
    print(res.report())
    assert res.mean_ratio > 3.0  # Titan-like is many times slower on average
    assert res.titan["p99"] > res.cgraph["p99"]


def test_fig8b_vs_gemini(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig8b_distribution_vs_gemini,
        num_queries=100,
        num_machines=3,
        scale=bench_scale,
    )
    print()
    print(res.report())
    # the paper's ratio is ~14x; serialization must dominate clearly
    assert res.mean_ratio > 5.0
    # Gemini's *median* is inflated by backlog although its single-query
    # engine is as fast as ours
    assert res.gemini["p50"] > res.cgraph["p50"]
