"""Figure 7: 100 concurrent 3-hop queries vs the Titan-like database.

Paper: C-Graph 21x-74x faster per sorted query rank, all C-Graph queries
back within 1 s while Titan takes up to 70 s, and far lower variance.
Wall-clock measured on both systems (single machine, OR-100M analog).
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig7_vs_titan(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig7_vs_titan,
        num_queries=100,
        roots_per_query=10,
        scale=bench_scale,
    )
    print()
    print(res.report())
    # C-Graph wins at every rank, by a wide margin at the top end
    assert res.speedup_min > 1.0
    assert res.speedup_max > 5.0
    # lower upper bound AND lower variance, the paper's two qualitative claims
    assert res.cgraph_sorted[-1] < res.titan_sorted[-1]
    cg_spread = res.cgraph_sorted[-1] - res.cgraph_sorted[0]
    ti_spread = res.titan_sorted[-1] - res.titan_sorted[0]
    assert cg_spread < ti_spread
