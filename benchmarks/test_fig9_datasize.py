"""Figure 9: data-size scalability of 100 concurrent 3-hop queries, 9 machines.

Paper: 85% of queries within 0.4 s (FR-1B) / 0.6 s (FRS-100B); upper bounds
1.2 s / 1.6 s; "the response time highly depends on the average degree of
root vertices, which is 38, 27, 108 for OR-100M, FR-1B, FRS-100B".

The FRS-100B analog saturates under 3 hops (its 3-hop ball covers most of
the scaled graph, unlike the paper's 106B-edge original), so its absolute
times exceed the paper's — the cross-dataset *ordering* and the bounded-tail
shape are the reproduction target here (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig9_data_size(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig9_data_size_scalability,
        num_queries=100,
        scale=bench_scale,
        distinct_roots=60,
    )
    print()
    print(res.report())
    or_rt = res.per_dataset["OR-100M"]
    fr_rt = res.per_dataset["FR-1B"]
    frs_rt = res.per_dataset["FRS-100B"]
    # larger datasets -> larger response times, as in the figure
    assert or_rt.mean < fr_rt.mean < frs_rt.mean
    # bounded tails: p85 within ~2x of the median for every dataset
    for rt in res.per_dataset.values():
        assert rt.percentile(85) < 3 * max(rt.percentile(50), 1e-9)
    # the FRS root degree dwarfs the others (paper: 108 vs 38/27)
    assert res.avg_root_degree["FRS-100B"] > res.avg_root_degree["FR-1B"]
