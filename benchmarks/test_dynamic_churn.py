"""Dynamic graphs: incremental 2-hop index maintenance vs rebuild-per-batch.

The ``dynamic_churn`` driver replays one insert-dominated mutation stream
(fresh edge inserts plus one random base-edge expiry per batch, <= 1% of
the base edge count in total) against two twin dynamic sessions with a
resident hub-label index: one patches the index in place per batch
(pruned resumption BFS for inserts, invalidate-and-repair for deletes),
the other rebuilds it from scratch per batch.  Exactness is asserted
inside the driver — patched labels answer identically to the
from-scratch rebuild on sampled pairs at the final epoch, and the
spliced shards are byte-identical to the snapshot store's oracle
partitioning — before any timing counts.  The headline gate is the
incremental path's wall-clock win.  A reference run is exported to
``BENCH_dynamic_churn.json`` at repo root.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_dynamic_churn(benchmark, bench_scale, tmp_path):
    res = run_once(benchmark, E.dynamic_churn, scale=bench_scale)
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 2
    out = export_result(res, tmp_path / "dynamic_churn.json")
    assert out.exists()

    # The stream must stay within the low-churn regime the claim is about.
    assert res.churn_fraction <= 0.01

    # The performance claim: incremental maintenance beats rebuilding the
    # index every batch by >= 5x at <= 1% churn.  Measured reference:
    # ~8-10x at full scale, ~5.6x at scale 0.5, ~3.9x at scale 0.25 (the
    # smaller analog graphs shrink the rebuild side faster than the
    # patch side); gates leave headroom for runner noise.
    floor = 5.0 if bench_scale >= 0.5 else 2.5
    assert res.speedup >= floor, (
        f"incremental {res.incremental_wall_s:.4f} s vs rebuild "
        f"{res.rebuild_wall_s:.4f} s: speedup {res.speedup:.2f}x < {floor}x"
    )
