"""Figure 11: 100 concurrent 3-hop queries on FR-1B, 1/3/6/9 machines.

Paper: with more machines most queries respond fast (80% within 0.2 s, 90%
within 1 s at the high machine counts), while "the number of boundary
vertices increases significantly" with the machine count.
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig11_machine_scaling(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig11_machine_scaling,
        machines=(1, 3, 6, 9),
        num_queries=100,
        scale=bench_scale,
    )
    print()
    print(res.report())
    means = {p: rt.mean for p, rt in res.per_machines.items()}
    # responses improve monotonically with machines on this workload
    assert means[9] < means[3] < means[1]
    # at 9 machines the distribution is tightly bounded (paper: 90% <= 1 s)
    assert res.per_machines[9].fraction_within(1.0) > 0.9
    # boundary vertices grow with the machine count (the paper's caveat)
    bv = res.boundary_vertices
    assert bv[1] == 0 and bv[3] < bv[6] < bv[9]
