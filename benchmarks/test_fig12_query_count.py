"""Figure 12: query-count scalability (20/50/100/350 queries, FRS-100B, 9 machines).

Paper: up to 100 concurrent queries respond fast (80% within 0.6 s); at 350
the pool saturates — 40% within 1 s, 60% within 2 s, a 4-7 s tail.  The
analog reproduces the *knee*: response distributions are stable up to 100
queries and degrade sharply at 350 (paper's tail grows ~4.4x; see
EXPERIMENTS.md for the saturation caveat on absolute values).
"""

from conftest import run_once

from repro.bench import experiments as E


def test_fig12_query_count(benchmark, bench_scale):
    res = run_once(
        benchmark,
        E.fig12_query_count_scaling,
        counts=(20, 50, 100, 350),
        scale=bench_scale,
    )
    print()
    print(res.report())
    rt = res.per_count
    # the knee: 20 -> 100 queries barely move the distribution...
    assert rt[100].max < 1.5 * rt[20].max
    # ...350 queries saturate the slots and the tail blows out
    assert rt[350].max > 1.8 * rt[100].max
    assert res.degradation_ratio() > 1.8
    # medians degrade more gently than the tails (queueing hits the tail)
    assert rt[350].percentile(50) < rt[350].max
