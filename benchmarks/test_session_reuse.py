"""Session reuse: N back-to-back k-hop batches, one session vs one-shot calls.

The persistent query-service runtime exists so that a deployment serving a
stream of query batches pays partitioning/cluster/task construction once,
not per batch.  This benchmark measures the wall-clock payoff on the
OR-100M analog: 8 back-to-back 64-query 3-hop batches served from one
resident ``GraphSession`` versus 8 one-shot ``concurrent_khop`` calls that
each rebuild the world.  The driver asserts both sides return bit-identical
answers, so the speedup is pure runtime-reuse, not a different computation.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_session_reuse(benchmark, bench_scale, tmp_path):
    res = run_once(
        benchmark,
        E.session_reuse,
        dataset="OR-100M",
        num_batches=8,
        batch_size=64,
        k=3,
        num_machines=3,
        scale=bench_scale,
    )
    print()
    print(res.report())

    # the per-batch table exports like every other experiment result
    rows = result_rows(res)
    assert len(rows) == res.num_batches + 1
    out = export_result(res, tmp_path / "session_reuse.csv")
    assert out.exists()

    # every session batch reuses cached tasks/partitions: no batch after the
    # first should cost more than its one-shot counterpart
    assert res.session_total_s < res.one_shot_total_s
    # the headline: >= 1.5x wall-clock for 8 back-to-back batches, even
    # charging the session its one-time build
    assert res.speedup >= 1.5, (
        f"session reuse speedup {res.speedup:.2f}x < 1.5x "
        f"(one-shot {res.one_shot_total_s:.3f} s, "
        f"session {res.session_total_s:.3f} s)"
    )
