"""Fault tolerance: what does per-superstep checkpointing cost?

The supervisor checkpoints every worker's task state at each superstep
barrier (``FaultTolerance(checkpoint_interval=1)``, the default) so a
crashed worker can be respawned and the batch rewound-and-replayed to a
bit-identical answer.  That durability must be cheap on the fault-free
fast path: this benchmark drains the identical k-hop batch with
checkpointing effectively off and with a checkpoint every superstep
(answers asserted bit-identical inside the driver, virtual clocks
included) and bounds the fault-free overhead at ten percent plus a small
absolute slack for sub-100ms drains.  A third, faulted drain records
what one injected crash + respawn + rewind-replay actually costs.

Reference numbers live in ``BENCH_recovery_overhead.json`` at repo root.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_recovery_overhead(benchmark, bench_scale, tmp_path):
    res = run_once(benchmark, E.recovery_overhead, repeats=3, scale=bench_scale)
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 3
    out = export_result(res, tmp_path / "recovery_overhead.json")
    assert out.exists()

    # bit-identical answers (reach counts and virtual clocks) for all three
    # drains were asserted inside the driver; what remains is the cost claim.
    assert res.ft_wall_s <= 1.10 * res.plain_wall_s + 0.05, (
        f"fault-free checkpointing overhead out of bounds: "
        f"{res.ft_wall_s:.4f} s vs plain {res.plain_wall_s:.4f} s "
        f"({100 * res.checkpoint_overhead:+.1f}%)"
    )
    # every timed faulted drain recovered in-pool (warm-up + repeats crashes)
    assert res.recoveries >= 1
