"""Table 1: dataset inventory — build every analog and report its true size."""

from conftest import run_once

from repro.bench import experiments as E


def test_table1_datasets(benchmark, bench_scale):
    res = run_once(benchmark, E.table1, scale=bench_scale, build=True)
    print()
    print(res.report())
    names = {r["name"] for r in res.rows}
    assert names >= {"OR-100M", "FR-1B", "FRS-72B", "FRS-100B"}
    for row in res.rows:
        assert row["analog_edges"] > 0
        # analogs preserve the relative ordering of the paper's datasets
    by_name = {r["name"]: r for r in res.rows}
    assert by_name["FR-1B"]["analog_edges"] > by_name["OR-100M"]["analog_edges"]
