"""Parallel scaling: the shared-memory worker pool vs the in-process engine.

The pool backend exists to turn the simulated cluster's per-machine
supersteps into real multicore work on the service hot path.  This
benchmark drains one 512-query wide k-hop batch at 1/2/4 workers on both
backends (bit-identical answers asserted inside the driver) and reports
wall-clock per worker count plus the pool-over-inproc speedup.

The speedup assertions are gated on the cores the host actually grants
(``os.sched_getaffinity``): a single-core runner cannot show parallel
speedup, so there the check degrades to an overhead bound — the pool's
IPC and shared-memory plumbing must stay within a small constant factor
of the in-process engine.  The measured numbers are always exported
(``BENCH_parallel_scaling.json`` at repo root records a reference run,
cores included).
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows


def test_parallel_scaling(benchmark, bench_scale, tmp_path):
    res = run_once(
        benchmark,
        E.parallel_scaling,
        worker_counts=(1, 2, 4),
        repeats=3,
        scale=bench_scale,
    )
    print()
    print(res.report())

    rows = result_rows(res)
    assert len(rows) == 3
    out = export_result(res, tmp_path / "parallel_scaling.json")
    assert out.exists()

    # bit-identical pool-vs-inproc answers were asserted inside the driver
    # for every worker count; what remains is the performance claim,
    # honest about the cores this host actually granted.
    if res.cores >= 4:
        assert res.speedup(4) >= 1.8, (
            f"pool speedup {res.speedup(4):.2f}x < 1.8x at 4 workers "
            f"on a {res.cores}-core host"
        )
    elif res.cores >= 2:
        assert res.speedup(2) >= 1.15, (
            f"pool speedup {res.speedup(2):.2f}x < 1.15x at 2 workers "
            f"on a {res.cores}-core host"
        )
    else:
        # single core: no parallelism possible — bound the plumbing overhead
        assert res.pool_wall_s[0] <= 6.0 * res.inproc_wall_s[0] + 0.05, (
            f"1-worker pool overhead out of bounds: pool "
            f"{res.pool_wall_s[0]:.4f} s vs inproc {res.inproc_wall_s[0]:.4f} s"
        )
