"""Ablation benches for the design choices DESIGN.md calls out.

* edge-set blocking vs flat CSR scan (§3.2);
* bit-parallel batch width, W=1 being the no-bit-ops mode (§3.5, the toggle
  the paper flips for Figure 13);
* synchronous barrier vs asynchronous overlap (§3.3);
* level-limited vs dense vertex-value storage (§3.3).
"""

from conftest import run_once

from repro.bench import experiments as E


def test_ablation_edge_sets(benchmark, bench_scale):
    res = run_once(benchmark, E.ablation_edge_sets, scale=bench_scale)
    print()
    print(res.report())
    by_variant = {r["variant"]: r for r in res.rows}
    # identical answers and identical counted work — blocking is a layout
    # change, not an algorithm change
    assert (
        by_variant["flat CSR"]["reached_total"]
        == by_variant["edge-sets"]["reached_total"]
    )
    assert (
        by_variant["flat CSR"]["edges_scanned"]
        == by_variant["edge-sets"]["edges_scanned"]
    )


def test_ablation_batch_width(benchmark, bench_scale):
    res = run_once(
        benchmark, E.ablation_batch_width, widths=(1, 8, 16, 32, 64),
        scale=bench_scale,
    )
    print()
    print(res.report())
    times = [r["total_virtual_s"] for r in res.rows]
    edges = [r["edges_scanned"] for r in res.rows]
    # monotone: wider batches share more traversal work
    assert times == sorted(times, reverse=True)
    assert edges == sorted(edges, reverse=True)
    # the full-word batch is dramatically cheaper than query-at-a-time
    assert times[-1] < times[0] / 4


def test_ablation_async(benchmark, bench_scale):
    res = run_once(benchmark, E.ablation_async, scale=bench_scale)
    print()
    print(res.report())
    by_mode = {r["mode"]: r["virtual_s"] for r in res.rows}
    assert by_mode["async"] < by_mode["sync"]
    assert by_mode["khop-async"] <= by_mode["khop-sync"]


def test_ablation_memory(benchmark, bench_scale):
    res = run_once(benchmark, E.ablation_memory, scale=bench_scale)
    print()
    print(res.report())
    by_store = {r["store"]: r["bytes"] for r in res.rows}
    assert by_store["level-limited (peak)"] < by_store["dense per-vertex"]


def test_ablation_out_of_core(benchmark, bench_scale):
    res = run_once(benchmark, E.ablation_out_of_core, scale=bench_scale)
    print()
    print(res.report())
    by_variant = {r["variant"]: r for r in res.rows}
    fragmented = by_variant["cache=2"]
    consolidated = by_variant["cache=2+consolidated"]
    # §3.2: consolidation slashes the number of small I/O operations
    assert consolidated["disk_reads"] < fragmented["disk_reads"] / 2
    assert consolidated["virtual_s"] <= fragmented["virtual_s"]
    # a cache big enough to hold the shard eliminates repeat reads
    biggest = by_variant["cache=64"]
    assert biggest["disk_reads"] <= fragmented["disk_reads"]


def test_ablation_wide_batches(benchmark, bench_scale):
    res = run_once(benchmark, E.ablation_wide_batches, scale=bench_scale)
    print()
    print(res.report())
    stream, wide = res.rows
    assert wide["edges_scanned"] < stream["edges_scanned"]
    assert wide["virtual_s"] < stream["virtual_s"]
    assert wide["passes"] == 1
