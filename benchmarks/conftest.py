"""Shared benchmark configuration.

Each benchmark wraps one experiment driver from
:mod:`repro.bench.experiments` in a single-round ``benchmark.pedantic`` call
(the drivers are deterministic end-to-end experiments, not microseconds-scale
kernels) and prints the driver's paper-style report so that

    pytest benchmarks/ --benchmark-only -s | tee bench_output.txt

captures every regenerated table and figure.

``REPRO_BENCH_SCALE`` (default ``1.0``) multiplies the analog dataset sizes
for the experiment benchmarks; the kernel micro-benchmarks are unaffected.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
