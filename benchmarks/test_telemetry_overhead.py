"""Telemetry overhead: the null facade must be free, recording must be cheap.

The instrumentation facade is threaded through every hot layer of the
runtime (engine supersteps, service dispatch, index lookups), so the
telemetry subsystem's core promise is that *not* observing costs nothing:
the default ``NULL_INSTRUMENTATION`` adds one ``if instr.enabled`` branch
per superstep and nothing per edge or message.  This benchmark pins that
promise on the OR-100M analog — a 64-query 3-hop service drain timed under
three regimes (un-instrumented baseline, explicit null facade, fully
recording) — and asserts the null facade stays within the 5% budget.
"""

from conftest import run_once

from repro.bench import experiments as E
from repro.bench.export import export_result, result_rows

# The null facade runs literally the same code path as the baseline (the
# un-instrumented default *is* the shared null singleton), so the 5% budget
# from the telemetry design doc is pure timing noise allowance.
NULL_OVERHEAD_BUDGET_PCT = 5.0


def test_telemetry_overhead(benchmark, bench_scale, tmp_path):
    res = run_once(
        benchmark,
        E.telemetry_overhead,
        dataset="OR-100M",
        num_queries=64,
        k=3,
        num_machines=3,
        scale=bench_scale,
        repeats=15,
    )
    print()
    print(res.report())

    # the regime table exports like every other experiment result
    rows = result_rows(res)
    assert len(rows) == 3
    out = export_result(res, tmp_path / "telemetry_overhead.csv")
    assert out.exists()

    # a recording run must actually have observed the drains
    assert res.spans_recorded > 0

    # the acceptance bound: null instrumentation within 5% of baseline
    assert res.null_overhead_pct <= NULL_OVERHEAD_BUDGET_PCT, (
        f"null-facade overhead {res.null_overhead_pct:+.2f}% exceeds "
        f"+{NULL_OVERHEAD_BUDGET_PCT}% budget "
        f"(baseline {res.baseline_s:.4f} s, null {res.null_s:.4f} s)"
    )
