"""Setup shim so ``pip install -e .`` works in offline environments.

The environment this reproduction targets has no ``wheel`` package, so the
PEP 517 editable-wheel path fails; with this shim pip falls back to the
legacy ``setup.py develop`` route.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
