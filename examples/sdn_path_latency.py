"""Hop-constrained latency paths in a software-defined network.

The paper motivates weighted path queries with SDNs: "a path query must be
subject to some distance constraints in order to meet quality-of-service
latency requirements" (§1).  This example models a datacenter-style network
(fat-tree-ish random topology with per-link latencies), then answers:

* what is the lowest-latency path to each host, and
* how much latency do we sacrifice by capping the hop count (route table
  depth), the constraint C-Graph's hop-budgeted SSSP answers directly.

Run:  python examples/sdn_path_latency.py
"""

import numpy as np

from repro import CGraph
from repro.graph import EdgeList, erdos_renyi


def build_network(num_switches: int = 2000, avg_links: int = 6, seed: int = 3):
    """A random switch fabric with lognormal per-link latencies (ms)."""
    rng = np.random.default_rng(seed)
    base = (
        erdos_renyi(num_switches, num_switches * avg_links, seed=seed)
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
    )
    latency_ms = rng.lognormal(mean=0.0, sigma=0.6, size=base.num_edges)
    return EdgeList(base.src, base.dst, base.num_vertices, latency_ms)


def main() -> None:
    net = build_network()
    print(f"network: {net.num_vertices} switches, {net.num_edges} directed links")

    g = CGraph(net, num_machines=4)
    controller = 0  # the SDN controller's switch

    unlimited = g.sssp(controller)
    reachable = np.isfinite(unlimited.distances)
    print(f"\nunconstrained shortest paths from switch {controller}:")
    print(f"  reachable switches: {int(reachable.sum())}")
    print(f"  median latency: {np.median(unlimited.distances[reachable]):.2f} ms")
    print(f"  p99 latency:    {np.percentile(unlimited.distances[reachable], 99):.2f} ms")

    print("\nhop-budget sweep (QoS constraint = route-table depth):")
    print("  hops  reachable  median_ms  stretch_vs_unlimited")
    for hops in (2, 3, 4, 6, 8):
        capped = g.sssp(controller, max_hops=hops)
        ok = np.isfinite(capped.distances)
        both = ok & reachable
        stretch = float(
            np.median(capped.distances[both] / np.maximum(unlimited.distances[both], 1e-9))
        )
        print(
            f"  {hops:4d}  {int(ok.sum()):9d}  "
            f"{np.median(capped.distances[ok]):9.2f}  {stretch:7.3f}x"
        )

    # a concrete QoS check: which switches meet a 3-hop, 5 ms SLA?
    sla = g.sssp(controller, max_hops=3)
    meets = np.isfinite(sla.distances) & (sla.distances <= 5.0)
    print(f"\nswitches meeting a (<=3 hops, <=5 ms) SLA: {int(meets.sum())}")


if __name__ == "__main__":
    main()
