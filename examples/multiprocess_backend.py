"""Running a query batch over real OS-process boundaries.

The library's default runtime simulates the cluster in-process (fast,
deterministic, cost-modelled).  This example exercises the alternative
substrate: one worker *process* per machine, numpy-buffer messages over
pipes, a coordinator as the interconnect — the same partition-centric
protocol the paper deploys over Socket/MPI, shrunk to one host.

Run:  python examples/multiprocess_backend.py
"""

import time

import numpy as np

from repro.core.khop import concurrent_khop
from repro.graph import graph500_kronecker, range_partition
from repro.runtime.mp_backend import mp_concurrent_khop


def main() -> None:
    edges = (
        graph500_kronecker(scale=15, edgefactor=12, seed=4)
        .remove_self_loops()
        .deduplicate()
    )
    print(f"graph: {edges.num_vertices:,} vertices, {edges.num_edges:,} edges")

    rng = np.random.default_rng(0)
    sources = rng.integers(0, edges.num_vertices, size=32).tolist()

    for machines in (1, 2, 4):
        pg = range_partition(edges, machines)

        t0 = time.perf_counter()
        ref = concurrent_khop(pg, sources, k=3)
        in_process = time.perf_counter() - t0

        t0 = time.perf_counter()
        res = mp_concurrent_khop(pg, sources, k=3)
        multi_process = time.perf_counter() - t0

        assert (res.reached == ref.reached).all(), "backends must agree"
        print(
            f"  {machines} machine(s): in-process {in_process * 1e3:7.1f} ms | "
            f"multi-process {multi_process * 1e3:7.1f} ms "
            f"(identical answers, {res.supersteps} supersteps)"
        )

    print("\nper-query reach (first 8):", ref.reached[:8].tolist())
    print("note: process spawn + pipe traffic dominates at this scale; the "
          "point is protocol fidelity across real process boundaries, not "
          "speedup on a toy graph.")


if __name__ == "__main__":
    main()
