"""Quickstart: build a graph, serve concurrent k-hop queries, rank vertices.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CGraph
from repro.graph import graph500_kronecker


def main() -> None:
    # 1. A synthetic social graph (the Graph500 generator the paper uses),
    #    ~16k vertices / ~260k edges, deduplicated and symmetrised.
    edges = (
        graph500_kronecker(scale=14, edgefactor=16, seed=7)
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
    )
    print(f"graph: {edges.num_vertices} vertices, {edges.num_edges} edges")

    # 2. Build the C-Graph framework handle: 3 simulated machines,
    #    edge-set (cache-blocked) storage enabled.
    g = CGraph(edges, num_machines=3, edge_sets=True)
    print(g)

    # 3. A batch of concurrent 3-hop reachability queries — the paper's
    #    core workload.  All queries traverse the graph *together*,
    #    sharing one pass per edge-set (§3.5).
    rng = np.random.default_rng(0)
    sources = rng.integers(0, g.num_vertices, size=8)
    result = g.khop(sources, k=3)
    print("\n3-hop reachability (concurrent batch):")
    for q, s in enumerate(sources):
        print(
            f"  source {int(s):6d}: {int(result.reached[q]):6d} vertices "
            f"within 3 hops (finished at hop {int(result.completion_level[q])})"
        )
    print(f"  batch virtual time: {result.virtual_seconds * 1e3:.2f} ms "
          f"({result.supersteps} supersteps, "
          f"{result.total_edges_scanned:,} edges scanned once for all queries)")

    # 4. Iterative computation on the same handle: PageRank via the GAS
    #    Update interface (Listing 3), 10 iterations as in the paper.
    run = g.pagerank()
    top = np.argsort(run.values)[-5:][::-1]
    print("\nPageRank top-5 vertices:")
    for v in top:
        print(f"  vertex {int(v):6d}: rank {run.values[v]:.3f}")

    # 5. One traversal with a per-level callback (Listing 2's Traverse),
    #    rooted at the highest-degree vertex.
    hub = int(edges.out_degrees().argmax())
    print(f"\nfrontier sizes from hub vertex {hub}:")
    g.traverse(hub, hops=4, visit=lambda lv, vs: print(f"  hop {lv}: {vs.size} new"))


if __name__ == "__main__":
    main()
