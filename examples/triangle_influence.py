"""Triangle counting as composed k-hop queries — the paper's §1 claim.

"Many higher-level analyses can be described and implemented in terms of
k-hop queries, such as triangle counting which is equivalent to finding
vertices that are within 1 and 2-hop neighbors of the same vertex."

This example verifies that equivalence end to end on a social analog
(sparse-matrix exact count == k-hop-composed count), then uses rooted k-hop
triangle queries for a local-influence analysis: users whose neighbourhoods
are densely interconnected (high local clustering) versus mere hubs.

Run:  python examples/triangle_influence.py
"""

import numpy as np

from repro import CGraph
from repro.core.triangles import local_triangles
from repro.graph import graph500_kronecker


def main() -> None:
    social = (
        graph500_kronecker(scale=13, edgefactor=12, seed=21)
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
    )
    g = CGraph(social, num_machines=2)
    print(f"graph: {g.num_vertices:,} users, {g.num_edges:,} friendships")

    exact = g.triangles()
    via_khop = g.triangles_via_khop()
    print(f"\ntriangles (sparse-matrix exact): {exact:,}")
    print(f"triangles (1/2-hop composition): {via_khop:,}")
    assert exact == via_khop, "the k-hop formulation must agree exactly"

    # local influence: triangles per user vs degree
    per_user = local_triangles(social)
    deg = social.out_degrees()
    with np.errstate(divide="ignore", invalid="ignore"):
        wedges = deg * (deg - 1) / 2
        clustering = np.where(wedges > 0, per_user / wedges, 0.0)

    print("\nmost embedded users (triangles, degree, local clustering):")
    for v in np.argsort(per_user)[-5:][::-1]:
        print(f"  user {int(v):7d}: {int(per_user[v]):6d} triangles, "
              f"degree {int(deg[v]):5d}, clustering {clustering[v]:.4f}")

    hubs = np.argsort(deg)[-5:][::-1]
    print("\nbiggest hubs for comparison:")
    for v in hubs:
        print(f"  user {int(v):7d}: {int(per_user[v]):6d} triangles, "
              f"degree {int(deg[v]):5d}, clustering {clustering[v]:.4f}")

    # rooted queries: triangles incident to a sampled user set, served by
    # the same operator a query workload would use
    rng = np.random.default_rng(5)
    sample = rng.choice(np.nonzero(deg > 0)[0], size=10, replace=False)
    rooted = g.triangles_via_khop(roots=sample)
    print(f"\ntriangles incident to a 10-user sample (rooted k-hop): {rooted:,}")


if __name__ == "__main__":
    main()
