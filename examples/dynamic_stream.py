"""Mutating a graph under live query traffic.

Production reachability services rarely get to stop the world: edges
stream in (new friendships, new links) and out (expiry, unfollows) while
queries keep arriving.  This example drives the dynamic graph layer
end to end:

1. builds a web-graph analog into a ``GraphSession`` and enables the
   dynamic layer — streaming mutations, epoch-versioned snapshots, and
   incremental maintenance of the resident 2-hop index;
2. runs an online ``QueryService`` with the hybrid planner while edge
   mutation batches arrive *between* query waves: every dispatched batch
   runs against one consistent epoch, the index is patched in place
   (resumption BFS for inserts, invalidate-and-repair for deletes), and
   point queries keep routing to the index lane because it never goes
   stale;
3. compacts the delta into a fresh base mid-stream and shows the epoch
   advancing without the edge set changing;
4. replays an old epoch from the snapshot store to prove any past
   version stays queryable.

Run:  python examples/dynamic_stream.py
"""

import numpy as np

from repro.graph.generators import rmat_edges
from repro.runtime.scheduler import QueryService
from repro.runtime.session import GraphSession


def main() -> None:
    edges = rmat_edges(12, 40_000, seed=42).remove_self_loops().deduplicate()
    n = edges.num_vertices
    print(f"web-graph analog: {n:,} vertices, {edges.num_edges:,} edges")

    session = GraphSession(edges, num_machines=4)
    dynamic = session.dynamic(compact_interval=4)
    session.index()  # resident 2-hop index, incrementally maintained
    service = QueryService(session, k=3, planner="hybrid")

    rng = np.random.default_rng(7)
    live = {int(u) * n + int(v) for u, v in zip(edges.src, edges.dst)}

    print("\nstreaming 6 mutation batches between query waves:")
    for wave in range(6):
        # A mutation batch: mostly fresh edges, one expiry.
        inserts = []
        while len(inserts) < 8:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and u * n + v not in live:
                inserts.append((u, v))
                live.add(u * n + v)
        drop = int(rng.choice(sorted(live)))
        deletes = [(drop // n, drop % n)]
        live.discard(drop)

        res = service.apply_mutations(inserts, deletes)

        # A wave of point queries rides the patched index lane.
        s = rng.integers(0, n, size=16)
        t = rng.integers(0, n, size=16)
        service.submit_many(s.tolist(), targets=t.tolist())
        report = service.drain()

        index_hits = int((report.routes == "index").sum())
        print(
            f"  wave {wave}: epoch {res.epoch:2d}  "
            f"+{len(inserts)}/-{len(deletes)} edges  "
            f"pending delta {dynamic.num_pending:2d}  "
            f"index lane {index_hits}/{report.num_queries}  "
            f"index current: {session.index_is_current}"
        )

    print(f"\ncompactions so far: {dynamic.compactions} "
          f"(every 4th mutated batch folds the delta into a new base)")

    # Any past epoch stays queryable: replay epoch 2 from the log.
    store = session.snapshots()
    old = store.edges_at(2)
    now = store.edges_at(dynamic.epoch)
    print(f"snapshot replay: epoch 2 had {old.num_edges:,} edges, "
          f"epoch {dynamic.epoch} has {now.num_edges:,}")
    assert now.num_edges == len(live)
    print("done: mutations, queries, compaction and replay on one session")


if __name__ == "__main__":
    main()
