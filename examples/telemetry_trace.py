"""Trace a concurrent k-hop workload and read where the virtual time went.

The telemetry subsystem turns the simulated C-Graph deployment into an
observable one: attach an ``Instrumentation`` to the session and every
drain leaves behind spans (dual wall/virtual clocks, partitions as
threads) and Prometheus-style counters.  This example:

1. builds the Orkut analog into a traced ``GraphSession``;
2. serves two waves of bit-parallel 3-hop batches through the
   ``QueryService`` (the second wave arrives after an idle gap, which the
   virtual timeline preserves);
3. exports all three formats — a chrome://tracing/Perfetto-loadable span
   trace, a Prometheus text file, and the full telemetry JSON dump;
4. summarises the trace offline: per-category virtual time, the slowest
   spans, and the per-partition compute-skew table (the straggler
   diagnosis for barrier-dominated supersteps).

Run:  python examples/telemetry_trace.py                 (full analog)
      REPRO_SCALE=0.2 python examples/telemetry_trace.py (quick)
"""

from repro.bench.experiments import calibrated_netmodel
from repro.bench.report import format_table
from repro.bench.workload import random_sources
from repro.graph.datasets import load_dataset
from repro.runtime.scheduler import QueryService
from repro.runtime.session import GraphSession
from repro.telemetry import (
    Instrumentation,
    load_trace,
    summarize_trace,
    write_chrome_trace,
    write_prometheus,
    write_telemetry_json,
)


def main() -> None:
    edges = load_dataset("OR-100M")
    print(f"orkut analog: {edges.num_vertices:,} vertices, "
          f"{edges.num_edges:,} edges")

    # One instrumentation object observes the whole stack: session,
    # cluster, engine supersteps, service dispatch.
    instr = Instrumentation()
    netmodel = calibrated_netmodel("OR-100M")
    session = GraphSession(
        edges, num_machines=3, netmodel=netmodel, instrumentation=instr
    )
    service = QueryService(session, k=3, discipline="batch")

    # Wave 1: a burst of 96 concurrent k-hop queries, batched word-wide.
    service.submit_many(random_sources(edges, 96, seed=3))
    report = service.drain()
    print(f"wave 1: {report.num_queries} queries in {report.num_batches} "
          f"batches, makespan {report.makespan * 1e3:.3f} ms (virtual)")

    # Wave 2 arrives after one virtual second of idleness; the tracer's
    # virtual cursor jumps the gap so both waves share one timeline.
    roots2 = random_sources(edges, 32, seed=4)
    service.submit_many(roots2, arrivals=[service.clock + 1.0] * roots2.size)
    report2 = service.drain()
    print(f"wave 2: {report2.num_queries} queries, "
          f"makespan {report2.makespan * 1e3:.3f} ms, "
          f"clock now {service.clock:.3f} s")

    # Export all three formats.
    trace_path = write_chrome_trace(instr.tracer, "telemetry_trace.json")
    prom_path = write_prometheus(instr.metrics, "telemetry_metrics.prom")
    dump_path = write_telemetry_json(instr, "telemetry_dump.json")
    print(f"\nwrote {trace_path} ({instr.tracer.num_recorded} spans; "
          f"load it in chrome://tracing or Perfetto)")
    print(f"wrote {prom_path} and {dump_path}")

    # Summarise the trace the way `repro telemetry` does.
    summary = summarize_trace(load_trace(trace_path), top=5)
    print()
    print(format_table(summary["categories"],
                       title="virtual time by span category"))
    print()
    print(format_table(summary["slowest"], title="slowest spans"))
    print()
    print(format_table(summary["skew"], title="per-partition compute skew"))
    print(f"\nskew ratio (max/mean partition compute): "
          f"{summary['skew_ratio']:.2f}")


if __name__ == "__main__":
    main()
