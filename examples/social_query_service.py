"""A concurrent friend-of-friend query service on a social-network analog.

The paper's motivating scenario (§1): a recommendation backend receives many
simultaneous "who is within k hops of this user" queries and must keep every
response under the interactivity threshold (~2 s).  This example:

1. builds the Friendster analog and a 9-machine C-Graph deployment;
2. replays a burst of 120 concurrent 3-hop queries, comparing the pooled
   C-Graph discipline against a serialized (Gemini-style) engine;
3. prints the response-time distribution against the paper's UX thresholds.

Run:  python examples/social_query_service.py           (full analog, ~1 min)
      REPRO_SCALE=0.2 python examples/social_query_service.py   (quick)
"""

import numpy as np

from repro.baselines.serial import GeminiLikeEngine
from repro.bench.experiments import calibrated_netmodel, per_query_service_seconds
from repro.bench.timing import ResponseTimes
from repro.bench.workload import random_sources
from repro.graph.datasets import load_dataset
from repro.graph.partition import range_partition
from repro.runtime.scheduler import QueryScheduler

UX_THRESHOLDS = [
    (0.2, "instantaneous (0.1-0.2 s)"),
    (2.0, "interactive (the paper's 2 s target)"),
    (10.0, "attention limit (10 s)"),
]


def main() -> None:
    edges = load_dataset("FR-1B")
    print(f"social graph analog: {edges.num_vertices:,} users, "
          f"{edges.num_edges:,} friendships")

    machines = 9
    pg = range_partition(edges, machines)
    netmodel = calibrated_netmodel("FR-1B")
    print(f"deployment: {machines} machines, "
          f"{pg.total_boundary_vertices():,} boundary vertices")

    queries = random_sources(edges, 120, seed=7)
    service = per_query_service_seconds(pg, queries, k=3, netmodel=netmodel)

    sched = QueryScheduler(num_machines=machines)
    pooled = ResponseTimes("C-Graph (pooled)", sched.pool(service))
    gemini = GeminiLikeEngine(pg, netmodel=netmodel)
    serial = ResponseTimes(
        "serialized engine", gemini.serialized_response_times(queries, 3)
    )

    for rt in (pooled, serial):
        print(f"\n{rt.label}: mean {rt.mean:.2f} s, "
              f"p90 {rt.percentile(90):.2f} s, max {rt.max:.2f} s")
        for threshold, label in UX_THRESHOLDS:
            pct = 100 * rt.fraction_within(threshold)
            print(f"  {pct:5.1f}% of queries within {label}")

    speedup = serial.mean / max(pooled.mean, 1e-12)
    print(f"\nconcurrent service is {speedup:.1f}x faster on average "
          f"(the Figure 8b effect)")


if __name__ == "__main__":
    main()
