"""A concurrent friend-of-friend query service on a social-network analog.

The paper's motivating scenario (§1): a recommendation backend receives many
simultaneous "who is within k hops of this user" queries and must keep every
response under the interactivity threshold (~2 s).  This example:

1. builds the Friendster analog once into a persistent ``GraphSession``
   (the 9-machine C-Graph deployment stays resident between waves);
2. replays a burst of 120 concurrent 3-hop queries through the *online*
   ``QueryService`` admission loop, comparing the pooled C-Graph discipline
   against a serialized (Gemini-style) engine;
3. submits a second wave to the same resident service — no rebuild, the
   virtual clock just keeps running;
4. prints the response-time distributions against the paper's UX thresholds.

Run:  python examples/social_query_service.py           (full analog, ~1 min)
      REPRO_SCALE=0.2 python examples/social_query_service.py   (quick)
"""

from repro.baselines.serial import GeminiLikeEngine
from repro.bench.experiments import calibrated_netmodel
from repro.bench.timing import ResponseTimes
from repro.bench.workload import random_sources
from repro.graph.datasets import load_dataset
from repro.runtime.scheduler import QueryService
from repro.runtime.session import GraphSession

UX_THRESHOLDS = [
    (0.2, "instantaneous (0.1-0.2 s)"),
    (2.0, "interactive (the paper's 2 s target)"),
    (10.0, "attention limit (10 s)"),
]


def main() -> None:
    edges = load_dataset("FR-1B")
    print(f"social graph analog: {edges.num_vertices:,} users, "
          f"{edges.num_edges:,} friendships")

    # Build the deployment ONCE: partitions, cluster and cost model live on
    # the session for as long as the service runs.
    machines = 9
    netmodel = calibrated_netmodel("FR-1B")
    session = GraphSession(edges, num_machines=machines, netmodel=netmodel)
    print(f"deployment: {machines} machines, "
          f"{session.pg.total_boundary_vertices():,} boundary vertices")

    service = QueryService(session, k=3, discipline="pool")
    queries = random_sources(edges, 120, seed=7)

    # Wave 1: a burst of 120 simultaneous queries hits the online service.
    service.submit_many(queries)
    report = service.drain()
    pooled = ResponseTimes("C-Graph (pooled)", report.response_seconds)

    gemini = GeminiLikeEngine(session.pg, netmodel=netmodel)
    serial = ResponseTimes(
        "serialized engine", gemini.serialized_response_times(queries, 3)
    )

    for rt in (pooled, serial):
        print(f"\n{rt.label}: mean {rt.mean:.2f} s, "
              f"p90 {rt.percentile(90):.2f} s, max {rt.max:.2f} s")
        for threshold, label in UX_THRESHOLDS:
            pct = 100 * rt.fraction_within(threshold)
            print(f"  {pct:5.1f}% of queries within {label}")

    speedup = serial.mean / max(pooled.mean, 1e-12)
    print(f"\nconcurrent service is {speedup:.1f}x faster on average "
          f"(the Figure 8b effect)")

    # Wave 2: the session stays resident — later queries reuse the same
    # partitioned graph, cluster, and per-root service-time memo.
    wave2 = random_sources(edges, 40, seed=8)
    service.submit_many(wave2, arrivals=[float(service.clock)] * wave2.size)
    report2 = service.drain()
    print(f"\nsecond wave of {wave2.size} queries on the resident session: "
          f"mean {report2.mean_response:.2f} s "
          f"(no rebuild; clock now {service.clock:.2f} s, "
          f"{session.batches_run} engine batches total)")


if __name__ == "__main__":
    main()
