"""Draining query batches on the persistent shared-memory worker pool.

The default runtime simulates every machine in one process.  With
``GraphSession(backend="pool")`` the same partition-centric protocol runs
on one long-lived OS process per machine: CSR shards live in shared
memory (workers attach once, zero copies), supersteps exchange only small
control records over pipes, and the pool survives across batches — so a
query service pays spawn cost once and every drain after that is pure
compute.  Answers are bit-identical to the in-process engine, virtual
times included; this script asserts it on every batch.

Run:  python examples/parallel_pool.py
"""

import os
import time

import numpy as np

from repro.core.wide import concurrent_khop_wide
from repro.graph import graph500_kronecker
from repro.runtime.session import GraphSession


def main() -> None:
    edges = (
        graph500_kronecker(scale=14, edgefactor=12, seed=4)
        .remove_self_loops()
        .deduplicate()
    )
    print(f"graph: {edges.num_vertices:,} vertices, {edges.num_edges:,} edges")
    print(f"cores available: {len(os.sched_getaffinity(0))}")

    rng = np.random.default_rng(0)
    sources = rng.integers(0, edges.num_vertices, size=512)

    inproc = GraphSession(edges, num_machines=2)
    ref = concurrent_khop_wide(edges, sources, 3, session=inproc)  # warm-up

    with GraphSession(edges, num_machines=2, backend="pool") as pool:
        t0 = time.perf_counter()
        res = concurrent_khop_wide(edges, sources, 3, session=pool)
        first = time.perf_counter() - t0  # includes worker spawn + image map

        assert np.array_equal(res.reached, ref.reached), "backends diverged"
        assert res.virtual_seconds == ref.virtual_seconds

        print(f"\nfirst pool drain (spawns workers):  {first * 1e3:8.1f} ms")
        for i in range(3):
            t0 = time.perf_counter()
            concurrent_khop_wide(edges, sources, 3, session=pool)
            t0_in = time.perf_counter()
            concurrent_khop_wide(edges, sources, 3, session=inproc)
            t1 = time.perf_counter()
            print(
                f"warm drain {i}: pool {(t0_in - t0) * 1e3:8.1f} ms"
                f"   inproc {(t1 - t0_in) * 1e3:8.1f} ms"
            )

        print(
            f"\n512 queries, k=3: {int(res.reached.sum()):,} vertices reached"
            f" in {res.supersteps} supersteps"
            f" ({res.virtual_seconds:.4f} virtual s on both backends)"
        )
    print("pool shut down; workers and shared segments released")


if __name__ == "__main__":
    main()
