"""Concurrent QoS path queries: the full weighted-query stack in one scenario.

A network operator receives a burst of simultaneous questions against one
weighted topology:

1. *latency maps* — "lowest-latency distance from each of these 16 ingress
   points to everywhere, using at most 4 hops" (concurrent hop-constrained
   SSSP, sharing one relaxation sweep);
2. *reachability checks* — "can these 12 (src, dst) pairs connect within
   3 hops at all?" (pairwise reachability with early termination);
3. *capacity planning* — "which switches are the most central?" (closeness
   over shared BFS batches).

Run:  python examples/concurrent_qos_queries.py
"""

import numpy as np

from repro.core.centrality import closeness_centrality
from repro.core.multi_sssp import concurrent_sssp
from repro.core.reachability import reachability_queries
from repro.graph import EdgeList, erdos_renyi, range_partition


def build_topology(num_switches=3000, avg_links=5, seed=13):
    rng = np.random.default_rng(seed)
    base = (
        erdos_renyi(num_switches, num_switches * avg_links, seed=seed)
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
    )
    latency_ms = rng.lognormal(0.0, 0.5, base.num_edges)
    return EdgeList(base.src, base.dst, base.num_vertices, latency_ms)


def main() -> None:
    net = build_topology()
    pg = range_partition(net, 4)
    rng = np.random.default_rng(1)
    print(f"topology: {net.num_vertices} switches, {net.num_edges} links, "
          f"4 partitions\n")

    # --- 1. concurrent hop-constrained latency maps ----------------------- #
    ingresses = rng.choice(net.num_vertices, size=16, replace=False)
    maps = concurrent_sssp(pg, ingresses, max_hops=4)
    print(f"latency maps for {maps.num_queries} ingress points "
          f"(max 4 hops, one shared sweep, "
          f"{maps.total_edges_scanned:,} edge relaxations):")
    for q in range(0, 16, 4):
        reach = np.isfinite(maps.distances[:, q])
        print(f"  ingress {int(ingresses[q]):5d}: {int(reach.sum()):5d} "
              f"switches reachable, median "
              f"{np.median(maps.distances[reach, q]):.2f} ms")

    # --- 2. pairwise reachability with early termination ------------------ #
    src = rng.choice(net.num_vertices, size=12)
    dst = rng.choice(net.num_vertices, size=12)
    reach = reachability_queries(pg, src, dst, k=3)
    ok = int(reach.reachable.sum())
    print(f"\nreachability: {ok}/12 pairs connect within 3 hops "
          f"({reach.total_edges_scanned:,} edges scanned; resolved queries "
          f"left the batch early)")
    for q in range(4):
        verdict = (
            f"{int(reach.hops[q])} hops" if reach.reachable[q] else "no route"
        )
        print(f"  {int(src[q]):5d} -> {int(dst[q]):5d}: {verdict}")

    # --- 3. closeness of sampled switches over shared BFS batches --------- #
    sample = rng.choice(net.num_vertices, size=128, replace=False)
    central = closeness_centrality(pg, roots=sample)
    print(f"\nmost central of {sample.size} sampled switches "
          f"(BFS batches shared 64-wide):")
    for v, score in central.top(5):
        print(f"  switch {v:5d}: closeness {score:.4f}")


if __name__ == "__main__":
    main()
