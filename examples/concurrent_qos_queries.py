"""Concurrent QoS path queries: the full weighted-query stack in one scenario.

A network operator receives a burst of simultaneous questions against one
weighted topology:

1. *latency maps* — "lowest-latency distance from each of these 16 ingress
   points to everywhere, using at most 4 hops" (concurrent hop-constrained
   SSSP, sharing one relaxation sweep);
2. *reachability checks* — "can these 12 (src, dst) pairs connect within
   3 hops at all?" (pairwise reachability with early termination);
3. *capacity planning* — "which switches are the most central?" (closeness
   over shared BFS batches);
4. *multi-tenant serving* — a monitoring crawler floods the service while
   the NOC dashboard needs sub-batch latency: SLO lanes + a tenant quota
   protect the interactive queries, and the result cache makes the
   dashboard's repeated probes nearly free (same verdicts throughout).

Run:  python examples/concurrent_qos_queries.py
"""

import numpy as np

from repro.core.centrality import closeness_centrality
from repro.core.multi_sssp import concurrent_sssp
from repro.core.reachability import reachability_queries
from repro.graph import EdgeList, erdos_renyi, range_partition
from repro.qos import LaneSpec, QosConfig, QuotaSpec, ResultCache
from repro.runtime.scheduler import QueryService
from repro.runtime.session import GraphSession


def build_topology(num_switches=3000, avg_links=5, seed=13):
    rng = np.random.default_rng(seed)
    base = (
        erdos_renyi(num_switches, num_switches * avg_links, seed=seed)
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
    )
    latency_ms = rng.lognormal(0.0, 0.5, base.num_edges)
    return EdgeList(base.src, base.dst, base.num_vertices, latency_ms)


def main() -> None:
    net = build_topology()
    pg = range_partition(net, 4)
    rng = np.random.default_rng(1)
    print(f"topology: {net.num_vertices} switches, {net.num_edges} links, "
          f"4 partitions\n")

    # --- 1. concurrent hop-constrained latency maps ----------------------- #
    ingresses = rng.choice(net.num_vertices, size=16, replace=False)
    maps = concurrent_sssp(pg, ingresses, max_hops=4)
    print(f"latency maps for {maps.num_queries} ingress points "
          f"(max 4 hops, one shared sweep, "
          f"{maps.total_edges_scanned:,} edge relaxations):")
    for q in range(0, 16, 4):
        reach = np.isfinite(maps.distances[:, q])
        print(f"  ingress {int(ingresses[q]):5d}: {int(reach.sum()):5d} "
              f"switches reachable, median "
              f"{np.median(maps.distances[reach, q]):.2f} ms")

    # --- 2. pairwise reachability with early termination ------------------ #
    src = rng.choice(net.num_vertices, size=12)
    dst = rng.choice(net.num_vertices, size=12)
    reach = reachability_queries(pg, src, dst, k=3)
    ok = int(reach.reachable.sum())
    print(f"\nreachability: {ok}/12 pairs connect within 3 hops "
          f"({reach.total_edges_scanned:,} edges scanned; resolved queries "
          f"left the batch early)")
    for q in range(4):
        verdict = (
            f"{int(reach.hops[q])} hops" if reach.reachable[q] else "no route"
        )
        print(f"  {int(src[q]):5d} -> {int(dst[q]):5d}: {verdict}")

    # --- 3. closeness of sampled switches over shared BFS batches --------- #
    sample = rng.choice(net.num_vertices, size=128, replace=False)
    central = closeness_centrality(pg, roots=sample)
    print(f"\nmost central of {sample.size} sampled switches "
          f"(BFS batches shared 64-wide):")
    for v, score in central.top(5):
        print(f"  switch {v:5d}: closeness {score:.4f}")

    # --- 4. SLO lanes: protect the NOC dashboard from the crawler --------- #
    session = GraphSession(net, num_machines=4)
    qos = QosConfig(
        lanes={
            "interactive": LaneSpec(weight=8.0, batch_width=8),
            "bulk": LaneSpec(weight=1.0),
        },
        quotas={"crawler": QuotaSpec(rate=2e4, burst=4.0)},
    )
    crawl_src = rng.integers(0, net.num_vertices, 256)
    crawl_dst = rng.integers(0, net.num_vertices, 256)
    dash_src = rng.integers(0, net.num_vertices, 8)
    dash_dst = rng.integers(0, net.num_vertices, 8)

    reports = {}
    for name, policy in (("fifo", None), ("qos", qos)):
        svc = QueryService(session, k=3, qos=policy)
        svc.submit_many(crawl_src, targets=crawl_dst, lane="bulk",
                        tenant="crawler")
        svc.submit_many(dash_src, np.linspace(1e-4, 2e-3, 8),
                        targets=dash_dst, lane="interactive", tenant="noc")
        reports[name] = svc.drain()
    fifo, qos_rep = reports["fifo"], reports["qos"]
    assert np.array_equal(fifo.reachable, qos_rep.reachable)
    print(f"\nSLO lanes under a {crawl_src.size}-query crawler backlog "
          f"(answers bit-identical to FIFO):")
    print(f"  dashboard p99: {1e3 * fifo.p99(lane='interactive'):8.3f} ms FIFO"
          f" -> {1e3 * qos_rep.p99(lane='interactive'):7.3f} ms with lanes")
    print(f"  crawler  p99: {1e3 * fifo.p99(lane='bulk'):8.3f} ms FIFO"
          f" -> {1e3 * qos_rep.p99(lane='bulk'):7.3f} ms "
          f"({qos_rep.throttled} quota-throttled)")

    # --- 5. the result cache on the dashboard's repeated probes ----------- #
    cached = QueryService(session, k=3, planner="hybrid",
                          cache=ResultCache(capacity=1024))
    for _ in range(2):  # the dashboard refreshes: same probes, warm cache
        cached.submit_many(dash_src, targets=dash_dst)
        rep = cached.drain()
    print(f"\ndashboard refresh via result cache: {rep.cache_hits} hits / "
          f"{rep.cache_misses} misses, routes {sorted(set(map(str, rep.routes)))}, "
          f"p99 {1e3 * rep.p99():.6f} ms")


if __name__ == "__main__":
    main()
