"""Web-graph analytics on the GAS Update interface (Listing 3).

Runs the paper's PageRank on a scale-free web-graph analog, then shows the
extension point: a custom :class:`VertexProgram` (connected components by
min-label propagation) on the same partition-centric engine — "our system
... supports both synchronous and asynchronous communication" (§1); both
modes are timed here.

Run:  python examples/web_pagerank.py
"""

import numpy as np

from repro import CGraph
from repro.core.gas import VertexProgram
from repro.graph import rmat_edges


class ConnectedComponents(VertexProgram):
    """Min-label propagation: every vertex converges to its component's min id."""

    combiner = np.minimum
    identity = np.inf

    def initial_values(self, num_vertices):
        return np.arange(num_vertices, dtype=np.float64)

    def scatter(self, values, part):
        return values

    def apply(self, values, gathered, part):
        return np.minimum(values, gathered)

    def has_converged(self, old, new):
        return bool(np.array_equal(old, new))


def main() -> None:
    # A directed scale-free "web" (pages + hyperlinks).
    web = rmat_edges(15, 400_000, seed=11).remove_self_loops().deduplicate()
    g = CGraph(web, num_machines=4, reindex="degree")
    print(f"web graph: {g.num_vertices:,} pages, {g.num_edges:,} links")

    # --- PageRank (Listing 3), sync vs async update model ---------------- #
    for asynchronous in (False, True):
        run = g.pagerank(iterations=10, asynchronous=asynchronous)
        label = "async" if asynchronous else "sync"
        print(f"\nPageRank ({label}, 10 iterations): "
              f"virtual time {run.virtual_seconds * 1e3:.2f} ms")
    ranks = run.values
    top = np.argsort(ranks)[-10:][::-1]
    print("top-10 pages by rank:")
    for v in top:
        print(f"  page {int(v):7d}  rank {ranks[v]:8.2f}")

    # --- A custom vertex program on the same engine ----------------------- #
    sym = web.symmetrize()
    g2 = CGraph(sym, num_machines=4)
    cc = g2.run_vertex_program(ConnectedComponents(), iterations=100)
    labels = cc.values
    num_components = np.unique(labels).size
    sizes = np.sort(np.bincount(labels.astype(np.int64)))[::-1]
    print(f"\nconnected components: {num_components} "
          f"(converged in {cc.iterations} supersteps)")
    print(f"largest components: {sizes[:5].tolist()}")


if __name__ == "__main__":
    main()
